// C-set trees: Definitions 3.9 (template), 5.1 (realization) and the
// grouping machinery of Definitions 3.4-3.6 / Lemma 5.5.
#include "core/cset_tree.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::id_of;
using testing::make_ids;

const IdParams kOct5{8, 5};

std::vector<NodeId> paper_v() {
  std::vector<NodeId> v;
  for (const char* s : {"72430", "10353", "62332", "13141", "31701"})
    v.push_back(id_of(s, kOct5));
  return v;
}

TEST(CSetTree, TemplateMatchesFigure2b) {
  // W = {10261, 47051, 00261} joining the paper's V: the template rooted at
  // V_1 has C-sets C_61, C_51, C_261, C_051, C_0261, C_7051, C_00261,
  // C_10261, C_47051 (Figure 2(b)).
  std::vector<NodeId> w{id_of("10261", kOct5), id_of("47051", kOct5),
                        id_of("00261", kOct5)};
  const CSetTree tree = CSetTree::make_template(kOct5, Suffix{1}, w);

  std::vector<std::string> suffixes;
  for (const auto& s : tree.sets())
    suffixes.push_back(suffix_to_string(s.suffix, kOct5));
  const std::vector<std::string> expected{
      "51", "61", "051", "261", "7051", "0261", "47051", "00261", "10261"};
  ASSERT_EQ(suffixes.size(), expected.size());
  for (const auto& e : expected)
    EXPECT_NE(std::find(suffixes.begin(), suffixes.end(), e), suffixes.end())
        << "missing C-set " << e;

  // Template members are the W subsets: C_261 = {10261, 00261}.
  for (const auto& s : tree.sets()) {
    if (suffix_to_string(s.suffix, kOct5) == "261") {
      EXPECT_EQ(s.members.size(), 2u);
    }
    if (suffix_to_string(s.suffix, kOct5) == "7051") {
      EXPECT_EQ(s.members.size(), 1u);
    }
  }
}

TEST(CSetTree, TemplateLeavesAreNodeIds) {
  std::vector<NodeId> w{id_of("10261", kOct5), id_of("00261", kOct5)};
  const CSetTree tree = CSetTree::make_template(kOct5, Suffix{1}, w);
  // Each leaf C-set's suffix must be a full node ID in W.
  std::size_t leaves = 0;
  for (const auto& s : tree.sets()) {
    if (!s.children.empty()) continue;
    ++leaves;
    EXPECT_EQ(s.suffix.size(), kOct5.num_digits);
  }
  EXPECT_EQ(leaves, w.size());
}

TEST(CSetTree, NotifySuffixGroups) {
  // Second example of Section 3.3: W = {10261, 00261, 67320, 11445} splits
  // into trees rooted at V_1, V_0 and V.
  SuffixTrie v_trie(kOct5);
  for (const auto& id : paper_v()) v_trie.insert(id);
  std::vector<NodeId> w{id_of("10261", kOct5), id_of("00261", kOct5),
                        id_of("67320", kOct5), id_of("11445", kOct5)};
  const auto groups = group_by_notify_set(v_trie, w);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].first, Suffix{1});
  EXPECT_EQ(groups[0].second.size(), 2u);  // 10261, 00261
  EXPECT_EQ(groups[1].first, Suffix{0});
  EXPECT_EQ(groups[2].first, Suffix{});
}

TEST(CSetTree, DependentGrouping) {
  SuffixTrie v_trie(kOct5);
  for (const auto& id : paper_v()) v_trie.insert(id);
  // 10261 and 00261 share V_1; 11445's notification set is all of V, which
  // intersects everything; 67320's is V_0. So all four are (transitively)
  // dependent through 11445.
  std::vector<NodeId> w{id_of("10261", kOct5), id_of("00261", kOct5),
                        id_of("67320", kOct5), id_of("11445", kOct5)};
  EXPECT_EQ(group_dependent(v_trie, w).size(), 1u);

  // Without 11445 the V_1 pair and 67320 are independent.
  std::vector<NodeId> w2{id_of("10261", kOct5), id_of("00261", kOct5),
                         id_of("67320", kOct5)};
  EXPECT_EQ(group_dependent(v_trie, w2).size(), 2u);
}

TEST(CSetTree, RealizedTreeAfterProtocolRun) {
  const IdParams params = kOct5;
  World world(params, 16);
  const auto v = paper_v();
  std::vector<NodeId> w{id_of("10261", params), id_of("47051", params),
                        id_of("00261", params)};
  build_consistent_network(world.overlay, v);
  Rng rng(10);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());

  SuffixTrie v_trie(params);
  for (const auto& id : v) v_trie.insert(id);
  const CSetTree realized =
      CSetTree::realize(view_of(world.overlay), v_trie, Suffix{1}, w);

  // Condition (1): same structure as the template, no empty C-sets.
  const CSetTree templ = CSetTree::make_template(params, Suffix{1}, w);
  EXPECT_TRUE(realized.same_structure(templ));
  EXPECT_TRUE(realized.all_nonempty()) << realized.to_string(params);

  // Root members are V_1 = {13141, 31701}.
  EXPECT_EQ(realized.root_members().size(), 2u);

  // The leaf for each joiner contains exactly that joiner.
  for (const auto& s : realized.sets()) {
    if (s.suffix.size() == params.num_digits) {
      ASSERT_EQ(s.members.size(), 1u);
      // A full-length suffix determines the ID completely.
      EXPECT_TRUE(s.members[0].has_suffix(s.suffix));
    }
  }
}

TEST(CSetTree, ConditionsDetectSabotage) {
  // Run the protocol to a correct state, then sabotage one root member's
  // table copy and verify condition (2) catches it.
  const IdParams params = kOct5;
  World world(params, 16);
  const auto v = paper_v();
  std::vector<NodeId> w{id_of("10261", params), id_of("00261", params)};
  build_consistent_network(world.overlay, v);
  Rng rng(20);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());

  SuffixTrie v_trie(params);
  for (const auto& id : v) v_trie.insert(id);
  ASSERT_TRUE(check_cset_conditions(view_of(world.overlay), v_trie, Suffix{1},
                                    w)
                  .empty());

  // Sabotaged view: replace 13141's table with one whose (1, 6) entry is
  // empty (it should hold a node with suffix 61).
  const NodeId victim = id_of("13141", params);
  NeighborTable broken(params, victim);
  world.overlay.at(victim).table().for_each_filled(
      [&](std::uint32_t i, std::uint32_t j, const NodeId& n,
          NeighborState st) {
        if (i == 1 && j == 6) return;
        broken.set(i, j, n, st);
      });
  NetworkView view(params);
  for (const auto& node : world.overlay.nodes()) {
    view.add(node->id() == victim ? &broken : &node->table());
  }
  const auto violations = check_cset_conditions(view, v_trie, Suffix{1}, w);
  EXPECT_FALSE(violations.empty());
}

TEST(CSetTree, RandomizedRealizationSatisfiesConditions) {
  const IdParams params{4, 6};
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    World world(params, 96, {}, seed);
    auto ids = make_ids(params, 80, seed + 100);
    const std::vector<NodeId> v(ids.begin(), ids.begin() + 40);
    const std::vector<NodeId> w(ids.begin() + 40, ids.end());
    build_consistent_network(world.overlay, v);
    Rng rng(seed);
    join_concurrently(world.overlay, w, v, rng);
    ASSERT_TRUE(world.overlay.all_in_system());

    SuffixTrie v_trie(params);
    for (const auto& id : v) v_trie.insert(id);
    for (const auto& [omega, members] : group_by_notify_set(v_trie, w)) {
      const auto violations = check_cset_conditions(view_of(world.overlay),
                                                    v_trie, omega, members);
      EXPECT_TRUE(violations.empty())
          << "seed " << seed << ": "
          << (violations.empty() ? "" : violations.front());
    }
  }
}

}  // namespace
}  // namespace hcube
