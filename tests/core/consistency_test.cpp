// The consistency checker and the direct builder, validated against each
// other and against hand-broken networks.
#include "core/consistency.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/routing.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::id_of;
using testing::make_ids;

TEST(Builder, DirectConstructionIsConsistent) {
  for (auto [base, digits, n] :
       {std::tuple<std::uint32_t, std::uint32_t, std::size_t>{2, 10, 100},
        {4, 6, 200}, {16, 4, 150}, {16, 8, 64}, {8, 5, 300}}) {
    const IdParams params{base, digits};
    World world(params, static_cast<std::uint32_t>(n));
    build_consistent_network(world.overlay, make_ids(params, n, 42));
    const auto report = check_consistency(view_of(world.overlay));
    EXPECT_TRUE(report.consistent())
        << "b=" << base << " d=" << digits << "\n"
        << report.summary(params);
  }
}

TEST(Builder, SingleNodeNetwork) {
  const IdParams params{4, 4};
  World world(params, 2);
  build_consistent_network(world.overlay, make_ids(params, 1, 3));
  EXPECT_TRUE(check_consistency(view_of(world.overlay)).consistent());
  EXPECT_TRUE(world.overlay.all_in_system());
}

TEST(Builder, ReverseNeighborSetsAreComplete) {
  const IdParams params{4, 5};
  World world(params, 32);
  auto ids = make_ids(params, 30, 9);
  build_consistent_network(world.overlay, ids);
  // If u stores v, then v's reverse set contains u.
  for (const auto& node : world.overlay.nodes()) {
    node->table().for_each_filled([&](std::uint32_t, std::uint32_t,
                                      const NodeId& v, NeighborState) {
      if (v == node->id()) return;
      const auto& reverse = world.overlay.at(v).table().reverse_neighbors();
      EXPECT_TRUE(reverse.contains(node->id()));
    });
  }
}

TEST(Consistency, DetectsFalseNegative) {
  // Two nodes that share nothing: each must still point at the other at
  // level 0. A table missing that entry is a false negative.
  const IdParams params{4, 3};
  const NodeId a = id_of("111", params);
  const NodeId b = id_of("222", params);
  NeighborTable ta(params, a), tb(params, b);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ta.set(i, a.digit(i), a, NeighborState::kS);
    tb.set(i, b.digit(i), b, NeighborState::kS);
  }
  ta.set(0, 2, b, NeighborState::kS);
  // tb deliberately misses its (0, 1) entry for a.
  NetworkView view(params);
  view.add(&ta);
  view.add(&tb);
  const auto report = check_consistency(view);
  EXPECT_FALSE(report.consistent());
  ASSERT_EQ(report.total_violations, 1u);
  EXPECT_EQ(report.violations[0].kind,
            ConsistencyViolation::Kind::kFalseNegative);
  EXPECT_EQ(report.violations[0].node, b);
  EXPECT_EQ(report.violations[0].level, 0u);
  EXPECT_EQ(report.violations[0].digit, 1u);
}

TEST(Consistency, DetectsUnknownNeighbor) {
  // a's (1, 2) entry wants suffix "21". Member c has it, so the entry must
  // be filled — but it holds `ghost`, which has the right suffix yet is not
  // a member. That is the unknown-neighbor violation (a dangling pointer,
  // stronger than a false positive).
  const IdParams params{4, 3};
  const NodeId a = id_of("111", params);
  const NodeId c = id_of("121", params);
  const NodeId ghost = id_of("221", params);
  NeighborTable ta(params, a), tc(params, c);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ta.set(i, a.digit(i), a, NeighborState::kS);
    tc.set(i, c.digit(i), c, NeighborState::kS);
  }
  ta.set(1, 2, ghost, NeighborState::kS);  // ghost is not a member
  NetworkView view(params);
  view.add(&ta);
  view.add(&tc);
  const auto report = check_consistency(view);
  EXPECT_FALSE(report.consistent());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.kind == ConsistencyViolation::Kind::kUnknownNeighbor) {
      found = true;
      EXPECT_EQ(v.present, ghost);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Consistency, DetectsStaleState) {
  const IdParams params{4, 3};
  const NodeId a = id_of("111", params);
  const NodeId b = id_of("221", params);
  NeighborTable ta(params, a), tb(params, b);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ta.set(i, a.digit(i), a, NeighborState::kS);
    tb.set(i, b.digit(i), b, NeighborState::kS);
  }
  ta.set(1, 2, b, NeighborState::kT);  // stale: b is in the network
  tb.set(1, 1, a, NeighborState::kS);
  ta.set(0, 1, b, NeighborState::kS);
  tb.set(0, 1, a, NeighborState::kS);
  NetworkView view(params);
  view.add(&ta);
  view.add(&tb);
  EXPECT_TRUE(check_consistency(view).consistent());  // states not checked
  ConsistencyCheckOptions options;
  options.check_states = true;
  const auto report = check_consistency(view, options);
  EXPECT_EQ(report.total_violations, 1u);
  EXPECT_EQ(report.violations[0].kind,
            ConsistencyViolation::Kind::kStaleState);
}

TEST(Consistency, ViolationCapKeepsCounting) {
  const IdParams params{2, 6};
  World world(params, 64);
  auto ids = make_ids(params, 60, 21);
  build_consistent_network(world.overlay, ids);
  // Check against a view missing one member: every pointer to it becomes an
  // unknown-neighbor violation, far more than the keep cap.
  NetworkView view(params);
  for (const auto& node : world.overlay.nodes())
    if (node->id() != ids[0]) view.add(&node->table());
  ConsistencyCheckOptions options;
  options.max_violations_kept = 4;
  const auto report = check_consistency(view, options);
  EXPECT_FALSE(report.consistent());
  EXPECT_EQ(report.violations.size(), 4u);
  EXPECT_GT(report.total_violations, 4u);
}

TEST(Consistency, ReachabilityMatchesLemma31) {
  // Lemma 3.1: all-pairs reachability iff condition (a). The direct builder
  // produces (a)-satisfying tables, so reachability must be total.
  const IdParams params{4, 5};
  World world(params, 40);
  build_consistent_network(world.overlay, make_ids(params, 40, 31));
  const NetworkView net = view_of(world.overlay);
  Rng rng(3);
  EXPECT_EQ(check_reachability_sample(net, UINT64_MAX, rng), 0u);
}

TEST(Consistency, BrokenEntryBreaksReachability) {
  const IdParams params{4, 3};
  const NodeId a = id_of("111", params);
  const NodeId b = id_of("222", params);
  NeighborTable ta(params, a), tb(params, b);
  for (std::uint32_t i = 0; i < 3; ++i) {
    ta.set(i, a.digit(i), a, NeighborState::kS);
    tb.set(i, b.digit(i), b, NeighborState::kS);
  }
  ta.set(0, 2, b, NeighborState::kS);
  NetworkView view(params);
  view.add(&ta);
  view.add(&tb);
  EXPECT_TRUE(reachable(view, a, b));
  EXPECT_FALSE(reachable(view, b, a));  // tb lacks the (0,1) entry
}

TEST(Consistency, SummaryMentionsVerdict) {
  const IdParams params{4, 4};
  World world(params, 8);
  build_consistent_network(world.overlay, make_ids(params, 5, 2));
  const auto report = check_consistency(view_of(world.overlay));
  EXPECT_NE(report.summary(params).find("CONSISTENT"), std::string::npos);
}

}  // namespace
}  // namespace hcube
