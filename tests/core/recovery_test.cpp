// Failure recovery (extension): fail-stop crashes, ping-timeout detection,
// pull-based entry repair. The oracle is the same Definition 3.8 checker,
// now over the surviving membership.
//
// Ping timeouts must exceed the worst round trip of the latency model; the
// test World uses synthetic latencies in [5, 120] ms, so 500 ms is safe.
#include <gtest/gtest.h>

#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::make_ids;

constexpr SimTime kPingTimeout = 500.0;

TEST(Recovery, SingleCrashRepairedWithinTwoRounds) {
  // One pull+push round clears every dead pointer; a second round lets
  // rediscovered members propagate one more announce hop (a member whose
  // only inbound pointer died may not know the hole's owner directly).
  const IdParams params{4, 6};
  World world(params, 60);
  auto ids = make_ids(params, 60, 5);
  build_consistent_network(world.overlay, ids);

  world.overlay.crash(ids[11]);
  const auto queries = world.overlay.repair_all(kPingTimeout, /*rounds=*/2);
  EXPECT_GT(queries, 0u);

  const auto report = check_consistency(view_of(world.overlay));
  EXPECT_TRUE(report.consistent()) << report.summary(params);
  // Nobody references the crashed node anymore.
  for (const auto& node : world.overlay.nodes()) {
    if (node->is_crashed()) continue;
    node->table().for_each_filled([&](std::uint32_t, std::uint32_t,
                                      const NodeId& n, NeighborState) {
      EXPECT_NE(n, ids[11]);
    });
    EXPECT_FALSE(node->table().reverse_neighbors().contains(ids[11]));
  }
}

TEST(Recovery, LastOfClassCrashNullsEntries) {
  // If the crashed node was the only member of a class, repair must
  // conclude "empty" rather than invent a neighbor.
  const IdParams params{4, 5};
  UniqueIdGenerator gen(params, 9);
  std::vector<NodeId> ids;
  NodeId loner;
  while (ids.size() < 25) {
    NodeId id = gen.next();
    if (id.digit(0) == 1) {
      if (loner.is_valid()) continue;
      loner = id;
    }
    ids.push_back(id);
  }
  ASSERT_TRUE(loner.is_valid());
  World world(params, 32);
  build_consistent_network(world.overlay, ids);

  world.overlay.crash(loner);
  world.overlay.repair_all(kPingTimeout, 1);

  for (const auto& node : world.overlay.nodes()) {
    if (node->is_crashed()) continue;
    EXPECT_TRUE(node->table().is_empty(0, 1));
  }
  EXPECT_TRUE(check_consistency(view_of(world.overlay)).consistent());
}

TEST(Recovery, MultipleScatteredCrashes) {
  const IdParams params{4, 6};
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    World world(params, 100, {}, seed);
    auto ids = make_ids(params, 100, seed * 7);
    build_consistent_network(world.overlay, ids);

    Rng rng(seed);
    for (int i = 0; i < 10; ++i)
      world.overlay.crash(ids[rng.next_below(ids.size())]);
    world.overlay.repair_all(kPingTimeout, /*rounds=*/3);

    const auto report = check_consistency(view_of(world.overlay));
    EXPECT_TRUE(report.consistent())
        << "seed " << seed << "\n"
        << report.summary(params);
    EXPECT_GE(world.overlay.live_size(), 90u);
  }
}

TEST(Recovery, RoutingRestoredAfterRepair) {
  const IdParams params{4, 6};
  World world(params, 80);
  auto ids = make_ids(params, 80, 13);
  build_consistent_network(world.overlay, ids);
  Rng rng(4);
  for (int i = 0; i < 8; ++i)
    world.overlay.crash(ids[rng.next_below(ids.size())]);
  world.overlay.repair_all(kPingTimeout, 3);

  const NetworkView net = view_of(world.overlay);
  Rng sample(1);
  EXPECT_EQ(check_reachability_sample(net, 20000, sample), 0u);
}

TEST(Recovery, JoinsWorkAfterRecovery) {
  const IdParams params{4, 6};
  World world(params, 80);
  auto ids = make_ids(params, 70, 21);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 60);
  build_consistent_network(world.overlay, v);
  world.overlay.crash(v[5]);
  world.overlay.crash(v[25]);
  world.overlay.repair_all(kPingTimeout, 2);
  ASSERT_TRUE(check_consistency(view_of(world.overlay)).consistent());

  // New nodes join the healed network (gateways must be live).
  std::vector<NodeId> live;
  for (const auto& node : world.overlay.nodes())
    if (!node->is_crashed()) live.push_back(node->id());
  Rng rng(3);
  const std::vector<NodeId> w(ids.begin() + 60, ids.end());
  join_concurrently(world.overlay, w, live, rng);
  EXPECT_TRUE(world.overlay.all_in_system());
  EXPECT_TRUE(check_consistency(view_of(world.overlay)).consistent());
}

TEST(Recovery, LeaveWorksAfterRecovery) {
  // The reverse-set pruning matters here: without it, a post-crash leave
  // would wait forever on an ack from the dead node.
  const IdParams params{4, 5};
  World world(params, 40);
  auto ids = make_ids(params, 40, 31);
  build_consistent_network(world.overlay, ids);
  world.overlay.crash(ids[3]);
  world.overlay.repair_all(kPingTimeout, 2);
  ASSERT_TRUE(check_consistency(view_of(world.overlay)).consistent());

  leave_and_drain(world.overlay, ids[10]);
  EXPECT_TRUE(world.overlay.at(ids[10]).has_departed());
  EXPECT_TRUE(check_consistency(view_of(world.overlay)).consistent());
}

TEST(Recovery, NoCrashNoChange) {
  const IdParams params{4, 5};
  World world(params, 30);
  auto ids = make_ids(params, 30, 41);
  build_consistent_network(world.overlay, ids);
  const auto queries = world.overlay.repair_all(kPingTimeout, 1);
  EXPECT_EQ(queries, 0u);  // all pings answered; nothing repaired
  EXPECT_TRUE(check_consistency(view_of(world.overlay)).consistent());
}

TEST(Recovery, PongBeatsShortTimeoutRace) {
  // A generous network (constant 1 ms latency) with a tight-but-sufficient
  // timeout: no false positives even when everything happens quickly.
  const IdParams params{4, 5};
  EventQueue queue;
  ConstantLatency latency(30, 1.0);
  Overlay overlay(params, {}, queue, latency);
  auto ids = make_ids(params, 30, 51);
  build_consistent_network(overlay, ids);
  const auto queries = overlay.repair_all(/*ping_timeout_ms=*/2.5, 1);
  EXPECT_EQ(queries, 0u);
}

}  // namespace
}  // namespace hcube
