// The multicast-join baseline: correctness (it must keep the network
// consistent) and the state/message asymmetry the paper claims against it.
#include "baseline/multicast_join.h"

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/consistency.h"
#include "test_util.h"

namespace hcube {
namespace {

using testing::World;
using testing::make_ids;

TEST(MulticastJoin, NetworkStaysConsistentAcrossJoins) {
  const IdParams params{4, 6};
  auto ids = make_ids(params, 80, 11);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 40);
  MulticastNetwork net(params, v);
  ASSERT_TRUE(check_consistency(net.view()).consistent());

  Rng rng(3);
  for (std::size_t i = 40; i < ids.size(); ++i) {
    net.join(ids[i], ids[rng.next_below(i)]);
    const auto report = check_consistency(net.view());
    ASSERT_TRUE(report.consistent())
        << "after join " << i << "\n"
        << report.summary(params);
  }
}

TEST(MulticastJoin, NotificationSetIsUpdated) {
  const IdParams params{2, 8};
  auto ids = make_ids(params, 40, 5);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 39);
  const NodeId joiner = ids.back();

  SuffixTrie trie(params);
  for (const auto& id : v) trie.insert(id);
  const std::size_t k = trie.notify_suffix_len(joiner);
  const auto noti_set = trie.all_with_suffix(joiner.suffix_of_len(k));

  MulticastNetwork net(params, v);
  const auto metrics = net.join(joiner, v[0]);
  EXPECT_EQ(metrics.existing_nodes_touched, noti_set.size());

  const NetworkView view = net.view();
  for (const NodeId& u : noti_set) {
    const NeighborTable* t = view.find(u);
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(t->holds(static_cast<std::uint32_t>(k), joiner.digit(k),
                         joiner));
  }
}

TEST(MulticastJoin, ExistingNodesCarryPendingState) {
  // The paper's critique: with multicast joins, existing nodes hold
  // per-join state. Use b = 2 so notification sets are large.
  const IdParams params{2, 10};
  auto ids = make_ids(params, 200, 7);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 190);
  MulticastNetwork net(params, v);

  Rng rng(1);
  std::uint64_t total_pending = 0;
  for (std::size_t i = 190; i < ids.size(); ++i) {
    const auto m = net.join(ids[i], v[rng.next_below(v.size())]);
    total_pending += m.existing_nodes_with_pending_state;
    EXPECT_EQ(m.announce_messages, m.ack_messages);
    EXPECT_GE(m.existing_nodes_touched, 1u);
  }
  EXPECT_GT(total_pending, 0u);
}

TEST(MulticastJoin, PrimaryProtocolKeepsExistingNodesStateless) {
  // The contrast experiment (E6): under the paper's protocol, existing
  // S-nodes never enter a join-pending state — Q_j and friends only exist
  // at T-nodes. We verify structurally: after a join wave, every V-node's
  // join bookkeeping was never used (its JoinStats show no CpRst/JoinWait
  // SENT, the signature of join-state activity).
  const IdParams params{2, 10};
  World world(params, 64);
  auto ids = make_ids(params, 60, 13);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 40);
  const std::vector<NodeId> w(ids.begin() + 40, ids.end());
  build_consistent_network(world.overlay, v);
  Rng rng(2);
  join_concurrently(world.overlay, w, v, rng);
  ASSERT_TRUE(world.overlay.all_in_system());
  for (const NodeId& u : v) {
    const JoinStats& s = world.overlay.at(u).join_stats();
    EXPECT_EQ(s.sent_of(MessageType::kCpRst), 0u);
    EXPECT_EQ(s.sent_of(MessageType::kJoinWait), 0u);
    EXPECT_EQ(s.sent_of(MessageType::kJoinNoti), 0u);
  }
}

TEST(MulticastJoin, RejectsDuplicateAndUnknownGateway) {
  const IdParams params{4, 4};
  auto ids = make_ids(params, 10, 3);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 8);
  MulticastNetwork net(params, v);
  EXPECT_DEATH(net.join(v[0], v[1]), "already a member");
  EXPECT_DEATH(net.join(ids[8], ids[9]), "gateway");
}

TEST(MulticastJoin, RouteHopsBounded) {
  const IdParams params{4, 6};
  auto ids = make_ids(params, 101, 19);
  const std::vector<NodeId> v(ids.begin(), ids.begin() + 100);
  MulticastNetwork net(params, v);
  const auto m = net.join(ids.back(), v[0]);
  EXPECT_LE(m.route_hops, params.num_digits);
}

}  // namespace
}  // namespace hcube
