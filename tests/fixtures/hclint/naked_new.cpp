// Seeds: no-naked-new and no-naked-delete (pooling rules: owned memory
// goes through containers or smart pointers). The deleted copy ctor must
// NOT be flagged.
struct Buffer {
  Buffer() = default;
  Buffer(const Buffer&) = delete;
  int* data = nullptr;
};

Buffer* make_buffer() { return new Buffer(); }
void free_buffer(Buffer* b) { delete b; }
