// Seeds: no-rand (std::rand in protocol code; all randomness must flow
// through the seeded generator in util/rng.h).
#include <cstdlib>

int pick_gateway(int num_nodes) { return std::rand() % num_nodes; }
