// Seeds: codec-encode-missing (DataMsg carries a payload but
// encode_message never writes it; the empty AckMsg is legitimately absent).
#include <cstdint>
#include <variant>
#include <vector>

enum class MessageType : std::uint8_t { kData, kAck };
inline constexpr std::size_t kNumMessageTypes = 2;

struct DataMsg {
  std::uint32_t payload = 0;
};
struct AckMsg {};

using MessageBody = std::variant<DataMsg, AckMsg>;

std::size_t wire_size_bytes(const MessageBody& body) {
  if (std::holds_alternative<DataMsg>(body)) return 4;
  (void)std::get_if<AckMsg>(&body);
  return 0;
}

std::vector<std::uint8_t> encode_message(const MessageBody& body) {
  std::vector<std::uint8_t> out;
  (void)body;
  return out;
}
