// Fixture: values derived from thread_local scratch escaping the call
// that produced them. scratch_view() is the accessor pattern used by
// NeighborTable::distinct_neighbors(): the returned span aliases a static
// thread_local buffer and dies at the accessor's next call, so it must be
// consumed in place — never returned onward or stored.
#include <span>
#include <vector>

namespace hcube {

std::span<const int> scratch_view() {
  static thread_local std::vector<int> scratch;
  scratch.assign(3, 7);
  return scratch;  // fine: this IS the accessor
}

std::span<const int> forwarded() {
  return scratch_view();  // flagged: span returned onward
}

struct Cache {
  std::span<const int> view_;
  void refresh() { view_ = scratch_view(); }  // flagged: member store
};

std::span<const int> via_local() {
  auto s = scratch_view();
  return s;  // flagged: local copy of the span escapes
}

static thread_local std::vector<int> g_scratch;

std::span<const int> global_return() {
  return g_scratch;  // flagged: file-scope scratch returned
}

int consumed_in_place() {
  int sum = 0;
  for (int v : scratch_view()) sum += v;  // fine: consumed before return
  return sum;
}

}  // namespace hcube
