// Fixture: values derived from thread_local scratch escaping the call
// that produced them. scratch_view() is the accessor pattern used by
// NeighborTable::distinct_neighbors(): the returned span aliases a static
// thread_local buffer and dies at the accessor's next call, so it must be
// consumed in place — never returned onward or stored.
#include <span>
#include <vector>

namespace hcube {

std::span<const int> scratch_view() {
  static thread_local std::vector<int> scratch;
  scratch.assign(3, 7);
  return scratch;  // fine: this IS the accessor
}

std::span<const int> forwarded() {
  return scratch_view();  // flagged: span returned onward
}

struct Cache {
  std::span<const int> view_;
  void refresh() { view_ = scratch_view(); }  // flagged: member store
};

std::span<const int> via_local() {
  auto s = scratch_view();
  return s;  // flagged: local copy of the span escapes
}

static thread_local std::vector<int> g_scratch;

std::span<const int> global_return() {
  return g_scratch;  // flagged: file-scope scratch returned
}

int consumed_in_place() {
  int sum = 0;
  for (int v : scratch_view()) sum += v;  // fine: consumed before return
  return sum;
}

// Sharded variant: per-lane slots (the distinct_neighbors() pattern after
// the sharding refactor). The accessor indexes a thread_local array by the
// current lane; the span it returns is still scratch — holding it past the
// accessor's next same-lane call, or across an epoch barrier where the
// lane migrates threads, reads reused or foreign storage.
std::span<const int> lane_scratch_view(unsigned lane) {
  static thread_local std::vector<int> scratch[4];
  scratch[lane].assign(3, 7);
  return scratch[lane];  // fine: this IS the accessor
}

std::span<const int> sharded_forwarded(unsigned lane) {
  return lane_scratch_view(lane);  // flagged: lane span returned onward
}

}  // namespace hcube
