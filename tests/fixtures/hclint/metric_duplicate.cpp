// Seeds: obs-metric-registered (duplicate). The same canonical name is
// declared at two sites; the linter must flag the second one — a duplicate
// silently merges two stats fields into one registry time series.
#define HCUBE_METRIC(ident, name) inline constexpr const char* ident = name

HCUBE_METRIC(kMetricNodeRestarts, "chaos.node_restarts");
HCUBE_METRIC(kMetricNodeRestartsAgain, "chaos.node_restarts");
