// Fixture: pointer-keyed containers feeding the run digest / JSON export.
// Their iteration order depends on allocation addresses, which silently
// breaks the FNV-1a run digest's bit-reproducibility.
#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace hcube {

struct Site {};

std::uint64_t run_digest(const std::map<const Site*, int>& by_site) {
  std::uint64_t digest = 1469598103934665603ULL;
  for (const auto& [site, count] : by_site) {  // flagged: address order
    digest ^= static_cast<std::uint64_t>(count);
    digest *= 1099511628211ULL;
  }
  return digest;
}

std::string to_json_dump() {
  std::set<Site*> dirty;  // flagged: pointer-keyed in an export function
  std::string out;
  return out;
}

int unrelated(const std::map<const Site*, int>& addr_keyed) {
  // Not a digest/export function: pointer keys are someone else's problem.
  return static_cast<int>(addr_keyed.size());
}

}  // namespace hcube
