// Fixture: the digest_nondet.cpp violations, waived on their lines.
#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace hcube {

struct Site {};

std::uint64_t run_digest(const std::map<const Site*, int>& by_site) {
  std::uint64_t digest = 1469598103934665603ULL;
  for (const auto& [site, count] : by_site) {  // hclint: allow(digest-nondeterminism)
    digest ^= static_cast<std::uint64_t>(count);
    digest *= 1099511628211ULL;
  }
  return digest;
}

std::string to_json_dump() {
  std::set<Site*> dirty;  // hclint: allow(digest-nondeterminism)
  std::string out;
  return out;
}

}  // namespace hcube
