// Fixture: unannotated mutable static-storage objects under src/. Each
// needs a capability annotation (util/thread_safety.h), const/constinit,
// or a waiver before the sharded simulator can trust the audit.
#include <cstdint>

namespace hcube {

static std::uint64_t g_total_events = 0;  // flagged
inline int g_mode = 0;                    // flagged

int bump() {
  static int calls = 0;  // flagged: function-local statics are shared too
  return ++calls;
}

// Acceptable forms the rule must stay quiet about:
static constexpr int kTableSize = 64;
static const char* const kName = "sim";
inline constexpr double kAlpha = 0.5;

}  // namespace hcube
