// Fixture: every sanctioned way to keep mutable static-storage state —
// capability annotations, constinit, internal synchronization, and (last
// resort) an explicit waiver. None of these may fire shared-state-annotated.
#include <cstdint>
#include <vector>

namespace hcube {

struct MutexLike {};
struct TableLike {};

static MutexLike g_mu HCUBE_INTERNALLY_SYNCHRONIZED;
static std::vector<int> g_queue HCUBE_GUARDED_BY(g_mu);
static int* g_cursor HCUBE_PT_GUARDED_BY(g_mu);
static TableLike g_table HCUBE_INTERNALLY_SYNCHRONIZED;
constinit static int g_epoch = 0;
static thread_local int g_depth = 0;
static int g_legacy = 0;  // hclint: allow(shared-state-annotated)

}  // namespace hcube
