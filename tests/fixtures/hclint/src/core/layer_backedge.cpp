// Fixture: an injected core -> chaos back-edge in the layer DAG. The
// fixture path's src/core/ segment is what makes layering-acyclic-includes
// treat this file as module core (layer 4); chaos sits in layer 5, so the
// include below must be flagged.
#include "chaos/fault_plan.h"  // flagged: back-edge
#include "ids/node_id.h"       // fine: downward edge (core 4 -> ids 1)

namespace hcube {

int poke() { return 0; }

}  // namespace hcube
