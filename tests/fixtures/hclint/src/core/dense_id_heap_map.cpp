// Fixture: NodeId-keyed heap containers inside src/core/ (the path of this
// fixture file is what puts it in scope for dense-id-no-heap-map).
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace hcube {

struct NodeId {};
struct NodeIdSet {};  // dense-index type: its name must never match the rule

struct Bad {
  std::unordered_map<NodeId, int> by_node;   // flagged
  std::unordered_set<NodeId> nodes;          // flagged
  std::map<NodeId, int> ordered;             // flagged
  std::set<NodeId> members;                  // flagged
};

struct Fine {
  // Keyed by something other than NodeId: not the rule's business.
  std::unordered_map<std::uint64_t, int> by_slot;
  std::set<int> ints;
  NodeIdSet dense;
  // Waived legacy use.
  std::set<NodeId> legacy;  // hclint: allow(dense-id-no-heap-map)
};

}  // namespace hcube
