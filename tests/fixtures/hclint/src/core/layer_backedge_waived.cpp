// Fixture: the same core -> chaos back-edge as layer_backedge.cpp, waived
// on its line — proving the escape hatch works for layering findings (a
// real waiver would need a rationale and a migration plan in review).
#include "chaos/fault_plan.h"  // hclint: allow(layering-acyclic-includes)
#include "ids/node_id.h"

namespace hcube {

int poke() { return 0; }

}  // namespace hcube
