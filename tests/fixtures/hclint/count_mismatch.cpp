// Seeds: msg-count-mismatch, twice (the kNumMessageTypes literal says 3
// for a 2-enumerator enum, and the variant has 1 alternative).
#include <cstdint>
#include <variant>

enum class MessageType : std::uint8_t { kData, kAck };
inline constexpr std::size_t kNumMessageTypes = 3;

struct DataMsg {
  std::uint32_t payload = 0;
};

using MessageBody = std::variant<DataMsg>;
