// Seeds: dcheck-side-effect (the increment vanishes in NDEBUG builds,
// changing behavior between debug and release).
#define HCUBE_DCHECK(expr) ((void)0)

int consume(int* cursor, int limit) {
  HCUBE_DCHECK(++*cursor < limit);
  return *cursor;
}
