// Seeds: status-to-string-missing (kCrashed has no to_string arm).
#include <cstdint>

enum class NodeStatus : std::uint8_t { kCopying, kInSystem, kCrashed };

const char* to_string(NodeStatus s) {
  switch (s) {
    case NodeStatus::kCopying: return "copying";
    case NodeStatus::kInSystem: return "in_system";
    default: return "?";
  }
}
