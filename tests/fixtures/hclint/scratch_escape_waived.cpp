// Fixture: the scratch_escape.cpp violations, each waived on its line.
#include <span>
#include <vector>

namespace hcube {

std::span<const int> scratch_view() {
  static thread_local std::vector<int> scratch;
  scratch.assign(3, 7);
  return scratch;
}

std::span<const int> forwarded() {
  return scratch_view();  // hclint: allow(scratch-no-escape)
}

struct Cache {
  std::span<const int> view_;
  void refresh() { view_ = scratch_view(); }  // hclint: allow(scratch-no-escape)
};

std::span<const int> via_local() {
  auto s = scratch_view();
  return s;  // hclint: allow(scratch-no-escape)
}

static thread_local std::vector<int> g_scratch;

std::span<const int> global_return() {
  return g_scratch;  // hclint: allow(scratch-no-escape)
}

}  // namespace hcube
