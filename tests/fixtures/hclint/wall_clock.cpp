// Seeds: no-wall-clock, twice (time() and std::chrono::system_clock).
// Simulated runs must be replayable; only EventQueue time is allowed.
#include <chrono>
#include <ctime>

long stamp_unix() { return static_cast<long>(time(nullptr)); }

long stamp_chrono() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
