// Seeds: wire-size-missing (AckMsg is absent from the
// wire_size_bytes(const MessageBody&) visit).
#include <cstdint>
#include <variant>

enum class MessageType : std::uint8_t { kData, kAck };
inline constexpr std::size_t kNumMessageTypes = 2;

struct DataMsg {
  std::uint32_t payload = 0;
};
struct AckMsg {};

using MessageBody = std::variant<DataMsg, AckMsg>;

std::size_t wire_size_bytes(const MessageBody& body) {
  if (std::holds_alternative<DataMsg>(body)) return 4;
  return 0;
}
