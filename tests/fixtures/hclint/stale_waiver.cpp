// Fixture: a waiver that suppresses nothing. Stale waivers rot into false
// documentation ("this line is known-bad") and must be deleted, so
// waiver-unused flags them — and is itself not waivable.
namespace hcube {

int quiet() { return 0; }  // hclint: allow(no-rand)

}  // namespace hcube
