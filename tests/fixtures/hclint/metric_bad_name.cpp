// Seeds: obs-metric-registered (bad name). The declared metric name carries
// uppercase letters and a dash, violating the ^[a-z0-9_.]+$ grammar. The
// local macro definition mirrors src/util/metric.h minus the static_assert
// (which would reject this fixture at compile time — the lint rule exists
// for exactly the sites a compiler never sees).
#define HCUBE_METRIC(ident, name) inline constexpr const char* ident = name

HCUBE_METRIC(kMetricBad, "join.Watchdog-Restarts");
HCUBE_METRIC(kMetricGood, "join.watchdog_restarts");
