// Seeds: type-name-missing (kPong has no type_name arm).
#include <cstdint>

enum class MessageType : std::uint8_t { kPing, kPong };
inline constexpr std::size_t kNumMessageTypes = 2;

const char* type_name(MessageType t) {
  switch (t) {
    case MessageType::kPing: return "PingMsg";
    default: return "UnknownMsg";
  }
}

bool decode_message(std::uint8_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kPing:
      return true;
    case MessageType::kPong:
      return true;
  }
  return false;
}
