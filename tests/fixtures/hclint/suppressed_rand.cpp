// The deliberately-clean fixture: the violation on the next line is
// suppressed, so hclint must report nothing for this file.
#include <cstdlib>

int noisy_seed() { return std::rand(); }  // hclint: allow(no-rand)
