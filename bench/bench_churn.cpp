// Experiment E9 (extension) — churn: alternating join waves and graceful
// leaves against a live overlay. The paper's protocol covers joins; the
// leave protocol is this library's extension of its framework (DESIGN.md),
// and this bench characterizes the combined cost and verifies that
// consistency (Definition 3.8, over the live membership) survives sustained
// membership turnover.
//
// Schedule per round: a batch of concurrent joins runs to quiescence, then
// a batch of sequential leaves. The audit runs after every round.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto seed = bench::flag_u64(argc, argv, "--seed", 51);
  const auto rounds = bench::flag_u64(argc, argv, "--rounds", quick ? 4 : 10);
  const auto n0 = bench::flag_u64(argc, argv, "--n", quick ? 200 : 1000);
  const auto batch = bench::flag_u64(argc, argv, "--batch", quick ? 30 : 100);
  const IdParams params{16, 8};

  EventQueue queue;
  SyntheticLatency latency(
      static_cast<std::uint32_t>(n0 + rounds * batch + 16), 5.0, 120.0, seed);
  Overlay overlay(params, {}, queue, latency);

  UniqueIdGenerator gen(params, seed);
  std::vector<NodeId> live;
  for (std::size_t i = 0; i < n0; ++i) live.push_back(gen.next());
  build_consistent_network(overlay, live);
  Rng rng(seed ^ 1);

  std::printf("# E9 churn: %llu rounds of +%llu concurrent joins and "
              "-%llu graceful leaves (b=16, d=8, n0=%llu)\n\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(batch),
              static_cast<unsigned long long>(batch),
              static_cast<unsigned long long>(n0));
  std::printf("%5s %7s | %10s %10s | %12s | %s\n", "round", "live",
              "msgs/join", "msgs/leave", "sim-ms", "consistent");

  bool all_ok = true;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    const std::uint64_t msgs_before_joins = overlay.totals().messages;
    // Join wave.
    std::vector<NodeId> joiners;
    for (std::uint64_t i = 0; i < batch; ++i) joiners.push_back(gen.next());
    join_concurrently(overlay, joiners, live, rng);
    live.insert(live.end(), joiners.begin(), joiners.end());
    const std::uint64_t msgs_after_joins = overlay.totals().messages;

    // Leave wave: random victims, one at a time (the supported regime).
    for (std::uint64_t i = 0; i < batch; ++i) {
      const std::size_t victim = rng.next_below(live.size());
      overlay.at(live[victim]).start_leave();
      overlay.run_to_quiescence();
      live.erase(live.begin() + static_cast<long>(victim));
    }
    const std::uint64_t msgs_after_leaves = overlay.totals().messages;

    const auto report = check_consistency(view_of(overlay));
    const bool ok = overlay.all_in_system() && report.consistent();
    all_ok = all_ok && ok;
    std::printf("%5llu %7zu | %10.1f %10.1f | %12.0f | %s\n",
                static_cast<unsigned long long>(round), live.size(),
                static_cast<double>(msgs_after_joins - msgs_before_joins) /
                    static_cast<double>(batch),
                static_cast<double>(msgs_after_leaves - msgs_after_joins) /
                    static_cast<double>(batch),
                queue.now(), ok ? "yes" : "NO");
  }
  std::printf("\n%s\n", all_ok ? "Consistency held through all churn rounds."
                               : "CONSISTENCY LOST under churn!");
  return all_ok ? 0 : 1;
}
