// Experiment E9 — equilibrium churn: open-loop sustained turnover until
// the overlay saturates.
//
// The old closed-loop bench (join wave, then one leave at a time, each
// behind a quiescence barrier) measured per-operation cost but could not
// saturate anything: the barrier throttled the offered load to whatever the
// overlay could absorb. This rewrite drives the deterministic chaos engine
// in its open-loop equilibrium mode instead — seeded Poisson join/leave
// arrival processes at a configured rate, no quiescence anywhere before the
// final drain — and sweeps the rate upward until the saturation knee: the
// first rate whose join completion falls below the 0.99 floor (joins start
// burning their whole watchdog restart budget and abandon).
//
// Per swept rate r (leave rate = r/2, graceful degradation OFF) the bench
// reports, into BENCH_churn.json (hcube.bench.v1, hcstat-validated in CI):
//   eq.r<r>.completion_rate    joins completed / joins arrived
//   eq.r<r>.backlog_p99        p99 of the probed in-flight join backlog
//   eq.r<r>.join_p99_ms        p99 completion latency (spans restarts)
//   eq.r<r>.abandoned          joins that exhausted the restart budget
// plus the sweep verdicts:
//   eq.knee_rate               first rate below the completion floor
//   eq.sustained_rate          highest pre-knee rate
//   eq.sustained_completion_rate   completion at that rate, degradation ON
//   eq.backlog_p99             backlog p99 of the sustained run
//   eq.recovery_ms             post-spike backlog recovery (spike run)
// and the sustained run's full ChurnHealth ledger under churn.*.
//
// Guardrails (nonzero exit — CI's bench-trend row enforces them in quick
// mode):
//   * the sustained run, with degradation ON, must complete >= 0.99 of its
//     joins at the highest pre-knee rate, and
//   * two runs of that script must produce bit-identical digests — one of
//     them with an obs::JoinSpanTracer attached, so the determinism check
//     doubles as proof that observation does not perturb the run.
//
// Usage: bench_churn [--seed S] [--quick] [--rate-sweep]
//   --rate-sweep  is accepted for discoverability; the sweep is the only
//                 mode. --quick sweeps {2,4,8,16}/s over 4 steady windows
//                 (CI bench-trend); default {2,5,10,20,40}/s over 6.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "chaos/engine.h"
#include "chaos/schedule.h"
#include "obs/churn_health.h"
#include "obs/join_span.h"

namespace hcube::bench {
namespace {

constexpr double kCompletionFloor = 0.99;

chaos::EquilibriumSpec spec_for(double rate, std::uint32_t windows,
                                bool degrade, double spike_mult) {
  chaos::EquilibriumSpec spec;
  spec.rate_join = rate;
  spec.rate_leave = rate / 2.0;
  spec.steady_windows = windows;
  spec.spike_mult = spike_mult;
  spec.config = chaos::find_profile("equilibrium")->config;
  spec.config.degrade = degrade ? 1 : 0;
  return spec;
}

int main_impl(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  (void)flag_present(argc, argv, "--rate-sweep");
  const std::uint64_t seed = flag_u64(argc, argv, "--seed", 1);
  const std::uint32_t windows = quick ? 4 : 6;
  const std::vector<std::uint32_t> rates =
      quick ? std::vector<std::uint32_t>{2, 4, 8, 16}
            : std::vector<std::uint32_t>{2, 5, 10, 20, 40};

  std::printf(
      "churn: open-loop equilibrium sweep, seed=%llu, %u steady windows, "
      "leave rate = join rate / 2\n",
      static_cast<unsigned long long>(seed), windows);

  obs::BenchReport report("churn");
  report.param("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  report.param("seed", seed);
  report.param("windows", static_cast<std::uint64_t>(windows));
  auto& reg = report.metrics();

  // Phase 1 — saturation sweep, degradation OFF: where does the open loop
  // overwhelm the join protocol?
  double knee_rate = 0.0;
  double sustained_rate = 0.0;
  for (const std::uint32_t rate : rates) {
    const chaos::ChurnScript script = chaos::sample_equilibrium_script(
        seed, spec_for(rate, windows, /*degrade=*/false, /*spike_mult=*/0.0));
    const chaos::ChaosResult r = chaos::run_script(script);
    const double completion = r.eq.completion_rate();
    std::printf(
        "  r=%2u/s: completion %.4f, backlog p99 %.0f, join p99 %.0f ms, "
        "%llu abandoned%s\n",
        rate, completion, r.eq.backlog.quantile(0.99),
        r.eq.join_latency_ms.quantile(0.99),
        static_cast<unsigned long long>(r.eq.abandoned),
        completion < kCompletionFloor ? "  <-- saturated" : "");
    const std::string prefix = "eq.r" + std::to_string(rate);
    reg.set_named(prefix + ".completion_rate", completion);
    reg.set_named(prefix + ".backlog_p99", r.eq.backlog.quantile(0.99));
    reg.set_named(prefix + ".join_p99_ms",
                  r.eq.join_latency_ms.quantile(0.99));
    reg.set_named(prefix + ".abandoned", static_cast<double>(r.eq.abandoned));
    if (completion < kCompletionFloor) {
      if (knee_rate == 0.0) knee_rate = rate;
    } else {
      sustained_rate = rate;
    }
  }
  reg.set_named("eq.knee_rate", knee_rate);
  reg.set_named("eq.sustained_rate", sustained_rate);
  if (sustained_rate == 0.0) {
    write_report(report);
    std::fprintf(stderr,
                 "FAIL: even the lowest rate saturated — no sustainable "
                 "equilibrium point\n");
    return 1;
  }
  if (knee_rate > 0.0) {
    std::printf("  knee at %.0f/s; highest sustainable rate %.0f/s\n",
                knee_rate, sustained_rate);
  } else {
    std::printf("  no knee within the sweep; highest rate %.0f/s held\n",
                sustained_rate);
  }

  // Phase 2 — the sustained run: highest pre-knee rate with graceful
  // degradation ON, twice. Run A carries a JoinSpanTracer; run B is bare.
  // Identical digests prove both determinism and the no-perturbation
  // observation contract at once.
  const chaos::ChurnScript sustained_script = chaos::sample_equilibrium_script(
      seed, spec_for(sustained_rate, windows, /*degrade=*/true,
                     /*spike_mult=*/0.0));
  obs::JoinSpanTracer tracer;
  const chaos::ChaosResult run_a = chaos::run_script(
      sustained_script, [&tracer](Overlay& overlay) { tracer.attach(overlay); });
  const chaos::ChaosResult run_b = chaos::run_script(sustained_script);
  const double sustained_completion = run_a.eq.completion_rate();
  std::printf(
      "  sustained (degrade on, %.0f/s): completion %.4f, backlog p99 %.0f, "
      "digest %016llx\n",
      sustained_rate, sustained_completion, run_a.eq.backlog.quantile(0.99),
      static_cast<unsigned long long>(run_a.digest));
  reg.set_named("eq.sustained_completion_rate", sustained_completion);
  reg.set_named("eq.backlog_p99", run_a.eq.backlog.quantile(0.99));
  run_a.eq.export_to(reg);
  tracer.summary_to(reg);

  // Phase 3 — spike recovery: same sustained rate, one 3x rate spike, then
  // steady recovery windows; how long until the backlog is back to its
  // pre-spike baseline?
  const chaos::ChaosResult spiked = chaos::run_script(
      chaos::sample_equilibrium_script(
          seed, spec_for(sustained_rate, windows, /*degrade=*/true,
                         /*spike_mult=*/3.0)));
  std::printf("  spike 3x: recovery %.0f ms, completion %.4f\n",
              spiked.eq.recovery_ms, spiked.eq.completion_rate());
  reg.set_named("eq.recovery_ms", spiked.eq.recovery_ms);
  write_report(report);

  if (run_a.digest != run_b.digest) {
    std::fprintf(stderr,
                 "FAIL: sustained-run digests differ (%016llx vs %016llx) — "
                 "equilibrium runs must be bit-reproducible\n",
                 static_cast<unsigned long long>(run_a.digest),
                 static_cast<unsigned long long>(run_b.digest));
    return 1;
  }
  if (sustained_completion < kCompletionFloor) {
    std::fprintf(stderr,
                 "FAIL: completion %.4f below the %.2f floor at the "
                 "sustainable rate %.0f/s with degradation enabled\n",
                 sustained_completion, kCompletionFloor, sustained_rate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hcube::bench

int main(int argc, char** argv) { return hcube::bench::main_impl(argc, argv); }
