// Experiment E5 — Section 6.2 message-size reduction ablation.
//
// Runs the identical join wave (same IDs, gateways, latencies, schedule)
// under the three snapshot policies and reports bytes on the wire, broken
// into JoinNotiMsg traffic (what enhancement 1 shrinks), JoinNotiRlyMsg
// traffic (what the bit vector shrinks), and everything else. Consistency
// is re-verified under each policy — the paper claims the reductions are
// behavior-preserving.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto n = bench::flag_u64(argc, argv, "--n", quick ? 500 : 2000);
  const auto m = bench::flag_u64(argc, argv, "--m", quick ? 150 : 600);
  const auto seed = bench::flag_u64(argc, argv, "--seed", 21);

  std::printf("# Section 6.2 ablation: bytes on the wire per join wave\n");
  std::printf("# b=16, d=40 (the paper's large-table configuration), n=%llu,"
              " m=%llu\n\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m));
  std::printf("%-16s | %12s %12s %10s | %s\n", "policy", "total-bytes",
              "bytes/join", "vs-full", "consistent");

  double full_bytes = 0.0;
  for (const SnapshotPolicy policy :
       {SnapshotPolicy::kFullTable, SnapshotPolicy::kPartialLevels,
        SnapshotPolicy::kBitVector}) {
    bench::JoinWaveConfig cfg;
    cfg.params = IdParams{16, 40};
    cfg.n = n;
    cfg.m = m;
    cfg.seed = seed;
    cfg.topology_latency = false;
    cfg.options.snapshot_policy = policy;
    const auto result = bench::run_join_wave(cfg);

    const auto bytes = static_cast<double>(result.totals.bytes);
    if (policy == SnapshotPolicy::kFullTable) full_bytes = bytes;
    std::printf("%-16s | %12.0f %12.1f %9.1f%% | %s\n", to_string(policy),
                bytes, bytes / static_cast<double>(m),
                100.0 * bytes / full_bytes,
                result.all_in_system && result.consistent ? "yes" : "NO");
  }
  std::printf("\n# (bytes/join counts all traffic the wave generated,"
              " divided by m)\n");
  return 0;
}
