// Experiment E12 (extension) — routing survivability with redundant
// neighbors (Section 2.1's extra per-entry neighbors, used by Tapestry for
// fault-tolerant routing).
//
// Crash a fraction of a consistent network and, BEFORE any repair runs,
// measure the fraction of sampled live-pair routes that still succeed:
//   - plain suffix routing (primary entries only), versus
//   - fault-tolerant routing falling back to K backups per entry.
// The repair protocol (bench_recovery) restores the tables afterwards; this
// experiment quantifies how well the network limps along in between.
// A second table (E12b) measures partition-heal behaviour: a two-group cut
// opens while joins whose gateways sit across it are in flight. The ARQ
// layer keeps retransmitting into the cut until the window closes, so every
// join stalls for the window and completes shortly after the heal; the row
// reports how much traffic the cut cost and how long after the heal the
// last joiner settled.
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/routing.h"
#include "net/fault_plan.h"
#include "net/reliable_transport.h"
#include "net/sim_transport.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto n = bench::flag_u64(argc, argv, "--n", quick ? 400 : 2000);
  const auto pairs = bench::flag_u64(argc, argv, "--pairs", quick ? 1500 : 5000);
  const auto seed = bench::flag_u64(argc, argv, "--seed", 81);
  const IdParams params{16, 8};

  obs::BenchReport report("survivability");
  report.param("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  report.param("n", n);
  report.param("pairs", pairs);
  report.param("seed", seed);

  std::printf("# E12: fraction of routes that survive f%% crashes BEFORE "
              "repair (n=%llu, b=16, d=8)\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%7s | %10s | %10s %10s %10s\n", "crash-f", "primary-only",
              "K=1", "K=2", "K=3");

  for (const double frac : {0.05, 0.10, 0.20, 0.30}) {
    std::printf("%6.0f%% |", frac * 100.0);
    for (const std::uint32_t k : {0u, 1u, 2u, 3u}) {
      EventQueue queue;
      SyntheticLatency latency(static_cast<std::uint32_t>(n), 5.0, 120.0,
                               seed);
      Overlay overlay(params, {}, queue, latency);
      UniqueIdGenerator gen(params, seed);
      std::vector<NodeId> ids;
      for (std::uint64_t i = 0; i < n; ++i) ids.push_back(gen.next());
      build_consistent_network(overlay, ids, /*backups_per_entry=*/k);

      Rng rng(seed + k);
      const auto kill =
          static_cast<std::size_t>(static_cast<double>(n) * frac);
      for (const auto idx : rng.sample_without_replacement(n, kill))
        overlay.crash(ids[idx]);
      const NetworkView live = view_of(overlay);

      std::uint64_t ok = 0, trials = 0;
      Rng sample(seed + 100);
      while (trials < pairs) {
        const NodeId& a = ids[sample.next_below(ids.size())];
        const NodeId& b = ids[sample.next_below(ids.size())];
        if (a == b || !live.contains(a) || !live.contains(b)) continue;
        ++trials;
        const auto r = k == 0 ? route(live, a, b)
                              : route_fault_tolerant(live, a, b);
        if (r.success) ++ok;
      }
      const double survived =
          static_cast<double>(ok) / static_cast<double>(trials);
      if (k == 0) {
        std::printf(" %11.4f |", survived);
      } else {
        std::printf(" %10.4f", survived);
      }
      report.metrics().set_named(
          "survive.f" + std::to_string(static_cast<int>(frac * 100.0)) + ".k" +
              std::to_string(k),
          survived);
    }
    std::printf("\n");
  }
  std::printf("\n# (K = redundant neighbors per entry; the paper's Section 3"
              " model is K = 0)\n");

  // E12b: joins across a two-group partition stall for the window, then
  // complete once the cut heals (the reliable layer's buffered
  // retransmissions flow across the former cut).
  const auto heal_n = bench::flag_u64(argc, argv, "--heal-n", quick ? 64 : 256);
  const std::uint32_t joiners = 8;
  std::printf("\n# E12b: partition-heal — %u joins across a 2-group cut "
              "(n=%llu)\n\n",
              joiners, static_cast<unsigned long long>(heal_n));
  std::printf("%9s | %15s %11s | %20s\n", "window-ms", "partition-drops",
              "retransmits", "last-settle-after-heal");

  for (const double window_ms : {500.0, 1500.0, 3000.0}) {
    const auto hosts = static_cast<std::uint32_t>(heal_n) + joiners;
    EventQueue queue;
    SyntheticLatency latency(hosts, 5.0, 120.0, seed);
    SimTransport inner(queue, latency);
    FaultPlan plan(seed + 9);
    ReliableTransport rel(inner, ReliabilityConfig{100.0, 2.0, 8});
    Overlay overlay(params, {}, rel);
    plan.attach(inner);

    UniqueIdGenerator gen(params, seed);
    std::vector<NodeId> ids;
    for (std::uint32_t i = 0; i < hosts; ++i) ids.push_back(gen.next());
    const std::vector<NodeId> members(ids.begin(), ids.begin() + heal_n);
    build_consistent_network(overlay, members);

    std::vector<std::vector<HostId>> groups(2);
    for (HostId h = 0; h < hosts; ++h) groups[h & 1].push_back(h);
    plan.partition(groups, 0.0, window_ms);
    for (std::uint32_t k = 0; k < joiners; ++k) {
      // Gateway on the other side of the cut from the joiner's host.
      const std::uint32_t joiner_host = static_cast<std::uint32_t>(heal_n) + k;
      const std::uint32_t gateway = 2 * k + ((joiner_host & 1) ^ 1);
      overlay.schedule_join(ids[joiner_host], ids[gateway],
                            10.0 + static_cast<SimTime>(k));
    }
    queue.run();

    SimTime last_settle = 0.0;
    for (std::uint32_t k = 0; k < joiners; ++k)
      last_settle = std::max(
          last_settle, overlay.at(ids[heal_n + k]).join_stats().t_end);
    std::printf("%9.0f | %15llu %11llu | %17.1fms\n", window_ms,
                static_cast<unsigned long long>(plan.partition_drops()),
                static_cast<unsigned long long>(rel.rstats().retransmits),
                last_settle - window_ms);

    const std::string tag =
        "heal.w" + std::to_string(static_cast<int>(window_ms));
    auto& reg = report.metrics();
    reg.add_named(tag + ".partition_drops", plan.partition_drops());
    reg.add_named(tag + ".retransmits", rel.rstats().retransmits);
    reg.set_named(tag + ".settle_after_heal_ms", last_settle - window_ms);
  }
  std::printf("\n# (ARQ: rto=100ms, backoff=2, 8 retries — the retry span "
              "outlives every window, so no join is abandoned)\n");
  bench::write_report(report);
  return 0;
}
