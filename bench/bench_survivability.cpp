// Experiment E12 (extension) — routing survivability with redundant
// neighbors (Section 2.1's extra per-entry neighbors, used by Tapestry for
// fault-tolerant routing).
//
// Crash a fraction of a consistent network and, BEFORE any repair runs,
// measure the fraction of sampled live-pair routes that still succeed:
//   - plain suffix routing (primary entries only), versus
//   - fault-tolerant routing falling back to K backups per entry.
// The repair protocol (bench_recovery) restores the tables afterwards; this
// experiment quantifies how well the network limps along in between.
#include <cstdio>

#include "core/routing.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto n = bench::flag_u64(argc, argv, "--n", quick ? 400 : 2000);
  const auto pairs = bench::flag_u64(argc, argv, "--pairs", quick ? 1500 : 5000);
  const auto seed = bench::flag_u64(argc, argv, "--seed", 81);
  const IdParams params{16, 8};

  std::printf("# E12: fraction of routes that survive f%% crashes BEFORE "
              "repair (n=%llu, b=16, d=8)\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%7s | %10s | %10s %10s %10s\n", "crash-f", "primary-only",
              "K=1", "K=2", "K=3");

  for (const double frac : {0.05, 0.10, 0.20, 0.30}) {
    std::printf("%6.0f%% |", frac * 100.0);
    for (const std::uint32_t k : {0u, 1u, 2u, 3u}) {
      EventQueue queue;
      SyntheticLatency latency(static_cast<std::uint32_t>(n), 5.0, 120.0,
                               seed);
      Overlay overlay(params, {}, queue, latency);
      UniqueIdGenerator gen(params, seed);
      std::vector<NodeId> ids;
      for (std::uint64_t i = 0; i < n; ++i) ids.push_back(gen.next());
      build_consistent_network(overlay, ids, /*backups_per_entry=*/k);

      Rng rng(seed + k);
      const auto kill =
          static_cast<std::size_t>(static_cast<double>(n) * frac);
      for (const auto idx : rng.sample_without_replacement(n, kill))
        overlay.crash(ids[idx]);
      const NetworkView live = view_of(overlay);

      std::uint64_t ok = 0, trials = 0;
      Rng sample(seed + 100);
      while (trials < pairs) {
        const NodeId& a = ids[sample.next_below(ids.size())];
        const NodeId& b = ids[sample.next_below(ids.size())];
        if (a == b || !live.contains(a) || !live.contains(b)) continue;
        ++trials;
        const auto r = k == 0 ? route(live, a, b)
                              : route_fault_tolerant(live, a, b);
        if (r.success) ++ok;
      }
      if (k == 0) {
        std::printf(" %11.4f |",
                    static_cast<double>(ok) / static_cast<double>(trials));
      } else {
        std::printf(" %10.4f",
                    static_cast<double>(ok) / static_cast<double>(trials));
      }
    }
    std::printf("\n");
  }
  std::printf("\n# (K = redundant neighbors per entry; the paper's Section 3"
              " model is K = 0)\n");
  return 0;
}
