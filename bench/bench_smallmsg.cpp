// Experiment E13 (extension of §5.2) — small-message accounting.
//
// The paper analyzes the "big" message types (CpRstMsg, JoinWaitMsg,
// JoinNotiMsg and replies) and defers the small-message analysis to the
// companion technical report. This bench fills that gap empirically: per
// joining node it reports every message type's count distribution, plus the
// structural identities that must hold:
//   - #InSysNotiMsg sent = size of the joiner's reverse-neighbor set at
//     switch time (everyone who stored it while it was a T-node),
//   - #RvNghNotiMsg sent tracks the number of entries the joiner filled,
//   - replies are 1:1 with their requests.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto n = bench::flag_u64(argc, argv, "--n", quick ? 774 : 3096);
  const auto m = bench::flag_u64(argc, argv, "--m", quick ? 250 : 1000);
  const auto seed = bench::flag_u64(argc, argv, "--seed", 91);
  const IdParams params{16, 8};

  EventQueue queue;
  SyntheticLatency latency(static_cast<std::uint32_t>(n + m), 5.0, 120.0,
                           seed);
  Overlay overlay(params, {}, queue, latency);
  UniqueIdGenerator gen(params, seed);
  std::vector<NodeId> v, w;
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(gen.next());
  for (std::uint64_t i = 0; i < m; ++i) w.push_back(gen.next());
  build_consistent_network(overlay, v);
  Rng rng(seed);
  join_concurrently(overlay, w, v, rng);
  HCUBE_CHECK(overlay.all_in_system());
  HCUBE_CHECK(check_consistency(view_of(overlay)).consistent());

  std::printf("# E13: per-joiner message counts, n=%llu, m=%llu, b=16, d=8\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m));
  std::printf("# (big types are the paper's §5.2 subjects; small types are "
              "the TR's)\n\n");
  std::printf("%-16s %5s | %8s %6s %6s %6s\n", "type sent by joiner", "big?",
              "mean", "p50", "p99", "max");

  for (std::size_t t = 0; t < kNumMessageTypes; ++t) {
    EmpiricalDistribution dist;
    for (const NodeId& x : w)
      dist.add(static_cast<std::int64_t>(
          overlay.at(x).join_stats().sent[t]));
    if (dist.max() == 0) continue;
    std::printf("%-16s %5s | %8.3f %6lld %6lld %6lld\n",
                type_name(static_cast<MessageType>(t)),
                is_big_request(static_cast<MessageType>(t)) ? "big" : "small",
                dist.mean(), static_cast<long long>(dist.quantile(0.5)),
                static_cast<long long>(dist.quantile(0.99)),
                static_cast<long long>(dist.max()));
  }

  // Structural identities.
  auto total = [&](MessageType t) {
    return overlay.sent_of(t);
  };
  std::printf("\n# identities:\n");
  std::printf("  CpRst==CpRly: %s, JoinWait==JoinWaitRly: %s, "
              "JoinNoti==JoinNotiRly: %s\n",
              total(MessageType::kCpRst) == total(MessageType::kCpRly)
                  ? "yes" : "NO",
              total(MessageType::kJoinWait) ==
                      total(MessageType::kJoinWaitRly)
                  ? "yes" : "NO",
              total(MessageType::kJoinNoti) ==
                      total(MessageType::kJoinNotiRly)
                  ? "yes" : "NO");

  std::uint64_t in_sys_sent = 0, reverse_sets = 0;
  for (const NodeId& x : w) {
    in_sys_sent += overlay.at(x).join_stats().sent_of(
        MessageType::kInSysNoti);
    reverse_sets += overlay.at(x).table().reverse_neighbors().size();
  }
  std::printf("  total InSysNotiMsg sent by joiners: %llu "
              "(reverse-neighbor registrations at quiescence: %llu)\n",
              static_cast<unsigned long long>(in_sys_sent),
              static_cast<unsigned long long>(reverse_sets));
  return 0;
}
