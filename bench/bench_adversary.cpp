// Planet-scale adversary bench: what does a misbehaving fraction cost the
// honest majority?
//
// For each misbehaving fraction f, a fresh overlay of n settled nodes is
// built over the PlanetLatency map (region-clustered measured-RTT-style
// delays) with the full chaos transport stack — lossy SimTransport +
// FaultPlan, healed by the ReliableTransport ARQ — and the defensive
// hardening of DESIGN.md §14 enabled. ceil(f·n) nodes are then marked
// misbehaving (2:1 stale-table responders to reply-droppers, the headline
// profiles), and a flash-crowd wave of m joiners arrives through random
// gateways — adversaries included. Per fraction the bench reports:
//   adv.f<pct>.completion_rate   settled joiners / m
//   adv.f<pct>.join_latency_ms   per-completed-join t_end - t_begin
//   adv.f<pct>.p99_latency_ms    its p99, as a gauge for trend lines
//   adv.f<pct>.noti_per_join     JoinNotiMsg sent per joiner (overhead)
//   adv.f<pct>.give_ups          ARQ retry budgets exhausted
//   adv.f<pct>.intercepted       deliveries the adversaries touched
// into BENCH_adversary.json (hcube.bench.v1, hcstat-validated in CI).
//
// The f = 0 row is the guardrail: with nobody misbehaving every join must
// complete (nonzero exit otherwise), so the sweep's degradation is
// attributable to the adversaries alone.
//
// Usage: bench_adversary [--n N] [--m M] [--seed S] [--quick]
//   --quick   n=48, m=96, fractions {0,10,20}% (CI bench-trend);
//             default n=240, m=480, fractions {0,5,10,15,20}%

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "chaos/adversary.h"
#include "net/fault_plan.h"
#include "net/reliable_transport.h"
#include "net/sim_transport.h"

namespace hcube::bench {
namespace {

struct FractionRow {
  std::uint32_t pct = 0;
  double completion_rate = 0.0;
  double p99_ms = 0.0;
  double noti_per_join = 0.0;
  std::uint64_t give_ups = 0;
  std::uint64_t intercepted = 0;
  std::vector<double> latencies_ms;  // completed joins only
};

FractionRow run_fraction(std::uint32_t pct, std::size_t n, std::size_t m,
                         std::uint64_t seed, const IdParams& params) {
  EventQueue queue;
  PlanetLatency latency(static_cast<std::uint32_t>(n + m), seed);
  SimTransport inner(queue, latency);
  FaultPlan plan(seed ^ 0xfau);
  plan.set_default({.drop = 0.01, .duplicate = 0.005});
  plan.attach(inner);
  ReliableTransport rel(inner, ReliabilityConfig{});
  ProtocolOptions options;
  options.join_watchdog_ms = 8000.0;
  options.join_max_restarts = 8;
  options.validate_repair_candidates = true;
  options.reply_timeout_ms = 2000.0;
  options.suspect_aware_rotation = true;
  Overlay overlay(params, options, rel);
  AdversaryEngine adversary(overlay);

  UniqueIdGenerator gen(params, seed ^ 0x5eed);
  std::vector<NodeId> v, w;
  v.reserve(n);
  w.reserve(m);
  for (std::size_t i = 0; i < n; ++i) v.push_back(gen.next());
  for (std::size_t i = 0; i < m; ++i) w.push_back(gen.next());
  build_consistent_network(overlay, v);

  // ceil(pct% of n) adversaries, strided across the (id-sorted-by-arrival)
  // seed set so no region of the suffix space is spared, 2:1 stale-table
  // to reply-dropper.
  const std::size_t k = (n * pct + 99) / 100;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t victim = (i * n) / k;
    const std::uint32_t profiles = (i % 3) < 2
                                       ? AdversaryEngine::kStaleTable
                                       : AdversaryEngine::kReplyDropper;
    adversary.mark(overlay.at(v[victim]), profiles, /*slow_ms=*/0.0);
  }

  // Flash-crowd wave through random gateways — adversaries included; the
  // suspect-aware rotation is what routes a stuck join away from them.
  Rng rng(seed);
  join_concurrently(overlay, w, v, rng, /*window_ms=*/4000.0);

  FractionRow row;
  row.pct = pct;
  std::uint64_t completed = 0;
  std::uint64_t noti_sent = 0;
  for (const NodeId& x : w) {
    const Node& node = overlay.at(x);
    noti_sent += node.join_stats().sent_of(MessageType::kJoinNoti);
    if (node.status() != NodeStatus::kInSystem) continue;
    ++completed;
    const JoinStats& s = node.join_stats();
    row.latencies_ms.push_back(s.t_end - s.t_begin);
  }
  row.completion_rate =
      m > 0 ? static_cast<double>(completed) / static_cast<double>(m) : 0.0;
  row.noti_per_join =
      m > 0 ? static_cast<double>(noti_sent) / static_cast<double>(m) : 0.0;
  row.give_ups = rel.rstats().give_ups;
  row.intercepted = adversary.counters().intercepted;
  if (!row.latencies_ms.empty()) {
    std::sort(row.latencies_ms.begin(), row.latencies_ms.end());
    const std::size_t idx = (row.latencies_ms.size() - 1) * 99 / 100;
    row.p99_ms = row.latencies_ms[idx];
  }
  return row;
}

int main_impl(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::size_t n =
      static_cast<std::size_t>(flag_u64(argc, argv, "--n", quick ? 48 : 240));
  const std::size_t m = static_cast<std::size_t>(
      flag_u64(argc, argv, "--m", quick ? 96 : 480));
  const std::uint64_t seed = flag_u64(argc, argv, "--seed", 1);
  const IdParams params{16, 8};
  const std::vector<std::uint32_t> fractions =
      quick ? std::vector<std::uint32_t>{0, 10, 20}
            : std::vector<std::uint32_t>{0, 5, 10, 15, 20};

  std::printf("adversary: n=%zu m=%zu seed=%llu planet-latency defend=on\n",
              n, m, static_cast<unsigned long long>(seed));

  obs::BenchReport report("adversary");
  report.param("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  report.param("n", static_cast<std::uint64_t>(n));
  report.param("m", static_cast<std::uint64_t>(m));
  report.param("seed", seed);
  auto& reg = report.metrics();

  bool clean_baseline = true;
  for (const std::uint32_t pct : fractions) {
    const FractionRow row = run_fraction(pct, n, m, seed, params);
    std::printf(
        "  f=%2u%%: completion %.4f, p99 %.0f ms, %.2f JoinNoti/join, "
        "%llu give-ups, %llu intercepted\n",
        pct, row.completion_rate, row.p99_ms, row.noti_per_join,
        static_cast<unsigned long long>(row.give_ups),
        static_cast<unsigned long long>(row.intercepted));
    const std::string prefix = "adv.f" + std::to_string(pct);
    reg.set_named(prefix + ".completion_rate", row.completion_rate);
    reg.set_named(prefix + ".p99_latency_ms", row.p99_ms);
    reg.set_named(prefix + ".noti_per_join", row.noti_per_join);
    reg.set_named(prefix + ".give_ups", static_cast<double>(row.give_ups));
    reg.set_named(prefix + ".intercepted",
                  static_cast<double>(row.intercepted));
    const auto hist = reg.histogram(prefix + ".join_latency_ms");
    for (const double ms : row.latencies_ms) reg.observe(hist, ms);
    if (pct == 0 && row.completion_rate < 1.0) clean_baseline = false;
  }
  write_report(report);

  if (!clean_baseline) {
    std::fprintf(stderr,
                 "FAIL: f=0%% wave did not fully complete — degradation "
                 "would not be attributable to the adversaries\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hcube::bench

int main(int argc, char** argv) { return hcube::bench::main_impl(argc, argv); }
