// Experiment E11 (extension) — failure recovery: crash a fraction of a
// consistent network, run pull+push repair rounds, and report how fast
// consistency over the survivors is restored and at what message cost.
//
// Residual violations after each round are reported honestly: clustered
// failures can orphan a suffix class for several announce hops, so
// convergence is round-by-round, not single-shot.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto n = bench::flag_u64(argc, argv, "--n", quick ? 300 : 1500);
  const auto seed = bench::flag_u64(argc, argv, "--seed", 71);
  const IdParams params{16, 8};
  constexpr SimTime kPingTimeout = 500.0;  // > 2 x max synthetic latency

  std::printf("# E11: failure recovery — crash f%% of n=%llu (b=16, d=8), "
              "repair rounds until consistent\n\n",
              static_cast<unsigned long long>(n));
  std::printf("%7s | %9s | %28s | %12s | %s\n", "crash-f", "survivors",
              "violations after round 1/2/3", "msgs/surv.", "final");

  for (const double frac : {0.01, 0.05, 0.10, 0.20, 0.30}) {
    EventQueue queue;
    SyntheticLatency latency(static_cast<std::uint32_t>(n), 5.0, 120.0,
                             seed);
    Overlay overlay(params, {}, queue, latency);
    UniqueIdGenerator gen(params, seed);
    std::vector<NodeId> ids;
    for (std::uint64_t i = 0; i < n; ++i) ids.push_back(gen.next());
    build_consistent_network(overlay, ids);

    Rng rng(seed + static_cast<std::uint64_t>(frac * 1000));
    const auto kill_count =
        static_cast<std::size_t>(static_cast<double>(n) * frac);
    for (const auto idx :
         rng.sample_without_replacement(n, kill_count))
      overlay.crash(ids[idx]);

    const std::uint64_t msgs_before = overlay.totals().messages;
    std::uint64_t violations[3] = {0, 0, 0};
    for (int round = 0; round < 3; ++round) {
      overlay.repair_all(kPingTimeout, 1);
      violations[round] =
          check_consistency(view_of(overlay)).total_violations;
    }
    const std::uint64_t msgs =
        overlay.totals().messages - msgs_before;
    const std::size_t survivors = overlay.live_size();
    std::printf("%6.0f%% | %9zu | %10llu %6llu %6llu   | %12.1f | %s\n",
                frac * 100.0, survivors,
                static_cast<unsigned long long>(violations[0]),
                static_cast<unsigned long long>(violations[1]),
                static_cast<unsigned long long>(violations[2]),
                static_cast<double>(msgs) / static_cast<double>(survivors),
                violations[2] == 0 ? "CONSISTENT" : "residual damage");
  }
  std::printf("\n# msgs/surv. counts all repair traffic (pings, pongs, "
              "queries, announcements) per surviving node\n");
  return 0;
}
