// Experiments E2 + E3 — Figure 15(b) and the in-text table of Section 5.2:
// event-driven simulation of 1000 concurrent joins into consistent networks
// of 3096 and 7192 nodes (b = 16, d = 8 and 40), end hosts attached to a
// transit-stub router topology (our GT-ITM substitute — DESIGN.md §5).
//
// Prints, per setup:
//   - the cumulative distribution of #JoinNotiMsg sent per joining node
//     (the curves of Figure 15(b)),
//   - measured average vs the Theorem 5 upper bound, next to the values the
//     paper reports (averages 6.117 / 6.051 / 5.026 / 5.399; bounds
//     8.001 / 8.001 / 6.986 / 6.986).
//
// Flags: --m <joiners> --seed <s> --quick (n=774/1798, m=250).
#include <cstdio>
#include <string>

#include "analysis/join_cost.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto m = bench::flag_u64(argc, argv, "--m", quick ? 250 : 1000);
  const auto seed = bench::flag_u64(argc, argv, "--seed", 1);

  obs::BenchReport report("fig15b");
  report.param("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  report.param("m", m);
  report.param("seed", seed);

  struct Setup {
    std::size_t n;
    std::uint32_t d;
  };
  const Setup setups[] = {{quick ? 774u : 3096u, 8},
                          {quick ? 774u : 3096u, 40},
                          {quick ? 1798u : 7192u, 8},
                          {quick ? 1798u : 7192u, 40}};
  const double paper_avg[] = {6.117, 6.051, 5.026, 5.399};

  std::printf("# Figure 15(b): CDF of #JoinNotiMsg sent by a joining node\n");
  std::printf("# b=16, m=%llu concurrent joins, transit-stub underlay\n\n",
              static_cast<unsigned long long>(m));

  struct Row {
    Setup setup;
    double avg, bound;
    bool ok;
  };
  std::vector<Row> rows;

  for (std::size_t s = 0; s < 4; ++s) {
    bench::JoinWaveConfig cfg;
    cfg.params = IdParams{16, setups[s].d};
    cfg.n = setups[s].n;
    cfg.m = m;
    cfg.seed = seed + s;
    cfg.topology_latency = true;
    const auto result = bench::run_join_wave(cfg);

    std::printf("## setup: n=%zu, m=%llu, b=16, d=%u  (all joins at t=0)\n",
                cfg.n, static_cast<unsigned long long>(m), setups[s].d);
    std::printf("#  %-18s %s\n", "#JoinNotiMsg", "cumulative fraction");
    for (const auto& [value, p] : result.join_noti.cdf_points())
      std::printf("   %-18lld %.4f\n", static_cast<long long>(value), p);

    const double bound = expected_join_noti_concurrent_bound(
        cfg.params, cfg.n, m);
    rows.push_back({setups[s], result.join_noti.mean(), bound,
                    result.all_in_system && result.consistent});

    const std::string tag =
        "fig15b.n" + std::to_string(cfg.n) + ".d" + std::to_string(setups[s].d);
    auto& reg = report.metrics();
    reg.set_named(tag + ".join_noti_mean", result.join_noti.mean());
    reg.set_named(tag + ".bound", bound);
    bench::observe_distribution(reg, tag + ".join_noti", result.join_noti);
    std::printf("#  mean=%.3f p99=%lld max=%lld  consistent=%s\n\n",
                result.join_noti.mean(),
                static_cast<long long>(result.join_noti.quantile(0.99)),
                static_cast<long long>(result.join_noti.max()),
                result.all_in_system && result.consistent ? "yes" : "NO");
  }

  std::printf("# Section 5.2 table: average #JoinNotiMsg per joiner\n");
  std::printf("%8s %4s | %10s %12s | %10s %10s | %s\n", "n", "d", "measured",
              "paper-avg", "bound(T5)", "paper-bnd", "verdict");
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const auto& r = rows[s];
    const double paper_bound = r.setup.n > 4000 ? 6.986 : 8.001;
    std::printf("%8zu %4u | %10.3f %12.3f | %10.3f %10.3f | %s\n", r.setup.n,
                r.setup.d, r.avg, quick ? 0.0 : paper_avg[s], r.bound,
                quick ? 0.0 : paper_bound,
                r.avg <= r.bound && r.ok ? "below bound, consistent"
                                         : "VIOLATION");
  }
  bench::write_report(report);
  return 0;
}
