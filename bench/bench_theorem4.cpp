// Experiment E14 — Theorem 4 validation: the analytic expectation of
// #JoinNotiMsg for a SINGLE join into a network of n nodes, against the
// measured average over many simulated joins, sweeping n.
//
// The paper plots only the concurrent upper bound (Figure 15(a)); this
// bench closes the loop on the exact single-join expectation its Theorem 4
// derives. Joins are performed sequentially into a growing network, so the
// effective n drifts by < joins_per_point across a measurement point —
// negligible at these scales.
#include <cmath>
#include <cstdio>
#include <string>

#include "analysis/join_cost.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto joins = bench::flag_u64(argc, argv, "--joins", quick ? 30 : 100);
  const auto seed = bench::flag_u64(argc, argv, "--seed", 101);
  const IdParams params{16, 8};

  obs::BenchReport report("theorem4");
  report.param("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  report.param("joins", joins);
  report.param("seed", seed);
  report.metrics().counter("t4.outside_3sigma");

  std::printf("# E14: Theorem 4 — E[#JoinNotiMsg] for a single join vs "
              "measured mean of %llu joins (b=16, d=8)\n\n",
              static_cast<unsigned long long>(joins));
  std::printf("%8s | %10s %10s %10s | %s\n", "n", "theorem4", "measured",
              "stderr", "within 3 sigma?");

  bool all_ok = true;
  for (const std::uint64_t n :
       {quick ? 100ull : 200ull, quick ? 200ull : 400ull,
        quick ? 400ull : 800ull, quick ? 800ull : 1600ull,
        quick ? 1600ull : 3200ull}) {
    EventQueue queue;
    SyntheticLatency latency(static_cast<std::uint32_t>(n + joins), 5.0,
                             120.0, seed + n);
    Overlay overlay(params, {}, queue, latency);
    UniqueIdGenerator gen(params, seed + n);
    std::vector<NodeId> v;
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(gen.next());
    build_consistent_network(overlay, v);

    Rng rng(seed);
    StreamingStats stats;
    for (std::uint64_t j = 0; j < joins; ++j) {
      const NodeId x = gen.next();
      overlay.schedule_join(x, v[rng.next_below(v.size())], overlay.now());
      overlay.run_to_quiescence();
      HCUBE_CHECK(overlay.at(x).is_s_node());
      stats.add(static_cast<double>(
          overlay.at(x).join_stats().sent_of(MessageType::kJoinNoti)));
      v.push_back(x);
    }
    HCUBE_CHECK(check_consistency(view_of(overlay)).consistent());

    // Expectation at the midpoint of the drift window.
    const double expected =
        expected_join_noti_single(params, n + joins / 2);
    const double stderr_est =
        stats.stddev() / std::sqrt(static_cast<double>(joins)) + 0.05;
    const bool ok = std::abs(stats.mean() - expected) <= 3.0 * stderr_est;
    all_ok = all_ok && ok;
    std::printf("%8llu | %10.3f %10.3f %10.3f | %s\n",
                static_cast<unsigned long long>(n), expected, stats.mean(),
                stderr_est, ok ? "yes" : "OUTSIDE");

    const std::string tag = "t4.n" + std::to_string(n);
    auto& reg = report.metrics();
    reg.set_named(tag + ".expected", expected);
    reg.set_named(tag + ".measured", stats.mean());
    reg.set_named(tag + ".stderr", stderr_est);
    if (!ok) reg.add_named("t4.outside_3sigma");
  }
  std::printf("\n%s\n",
              all_ok ? "Theorem 4 matches simulation at every scale."
                     : "Mismatch beyond 3 sigma — check the model.");
  bench::write_report(report);
  return all_ok ? 0 : 1;
}
