// Memory-budgeted scale bench on the sharded simulator: how large an
// overlay fits in a stated heap budget, what each node costs, and how the
// epoch/barrier engine carries a planet-scale join wave.
//
// Builds a consistent network of n nodes offline (SuffixTrie builder, no
// protocol traffic), measuring the heap delta across overlay construction:
// bytes/node is that delta divided by n. A join wave of m nodes then runs
// ON TOP of the built network through the sharded stack (net/sharded_net.h)
// — each join is a driver action, protocol events execute on the K lanes
// under the epoch barrier — so "settle time" reflects live-protocol hot
// paths at scale. K = 1 runs the identical wave on a single lane; the
// digest emitted into BENCH_scale.json is invariant across K (CI
// cross-checks --shards 4 against --shards 1), which extends the chaos
// tier's differential-determinism proof to the n=10^6 / m=100k regime.
//
// Usage: bench_scale [--n N] [--wave M] [--shards K] [--budget-mb MB]
//                    [--max-bytes-per-node B] [--quick]
//   --quick               n=10'000, m=1'000 (CI bench-trend); default
//                         n=1'000'000, m=100'000 (the ISSUE 10 workload)
//   --shards              simulator lanes (default 1)
//   --budget-mb           heap budget the build must fit in (default 8192)
//   --max-bytes-per-node  hard ceiling; nonzero exit when exceeded

#include <malloc.h>
#include <sys/resource.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"
#include "net/sharded_net.h"
#include "sim/shard_context.h"

namespace hcube::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Heap bytes currently handed out by the allocator (glibc): ordinary
// arena allocations plus mmapped blocks. Good to within allocator
// bookkeeping; both snapshots carry the same bias so the delta is clean.
std::uint64_t heap_in_use() {
#if defined(__GLIBC__) && (__GLIBC__ > 2 || __GLIBC_MINOR__ >= 33)
  const struct mallinfo2 mi = mallinfo2();
  return static_cast<std::uint64_t>(mi.uordblks) +
         static_cast<std::uint64_t>(mi.hblkhd);
#else
  return 0;  // non-glibc: report 0, the bench still runs
#endif
}

std::uint64_t max_rss_kb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);
}

// FNV-1a over the wave's complete observable outcome. Every addend is a
// pure function of (n, m, seeds) by the sharded determinism argument
// (DESIGN.md §16), so the digest must be bit-identical for any --shards.
struct Digest {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<unsigned char>(v >> (8 * i));
      h *= 0x100000001b3ULL;
    }
  }
};

// Pre-refactor layout measured at n = 10k (array-of-structs NeighborTable,
// 65-byte inline-digit NodeId, unordered_map reverse/backup sides), same
// IdParams{16, 8} and build path as below. The dense-index layout must stay
// >= 4x below this (ISSUE 6 acceptance); CI additionally enforces the
// --max-bytes-per-node ceiling on every run.
constexpr double kBaselineBytesPerNode10k = 16950.0;

int main_impl(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::size_t n = static_cast<std::size_t>(
      flag_u64(argc, argv, "--n", quick ? 10'000 : 1'000'000));
  const std::size_t wave = static_cast<std::size_t>(
      flag_u64(argc, argv, "--wave", quick ? 1'000 : 100'000));
  const std::uint32_t shards = static_cast<std::uint32_t>(
      flag_u64(argc, argv, "--shards", 1));
  const std::uint64_t budget_mb = flag_u64(argc, argv, "--budget-mb", 8192);
  const std::uint64_t ceiling =
      flag_u64(argc, argv, "--max-bytes-per-node", 0);
  const IdParams params{16, 8};

  std::printf("scale: n=%zu wave=%zu shards=%u budget=%lluMB base=%u "
              "digits=%u\n",
              n, wave, shards, static_cast<unsigned long long>(budget_mb),
              params.base, params.num_digits);

  const auto t_start = Clock::now();
  const std::uint64_t heap0 = heap_in_use();

  SyntheticLatency latency(static_cast<std::uint32_t>(n + wave), 5.0, 120.0,
                           /*seed=*/1);
  ShardedNet::Params net_params;
  net_params.lanes = shards;
  net_params.rel.rto_ms = 500.0;
  ShardedNet net(net_params, latency);
  ProtocolOptions options;
  Overlay overlay(params, options, net.transport());

  UniqueIdGenerator gen(params, 0x5ca1eULL);
  std::vector<NodeId> v, w;
  v.reserve(n);
  w.reserve(wave);
  for (std::size_t i = 0; i < n; ++i) v.push_back(gen.next());
  for (std::size_t i = 0; i < wave; ++i) w.push_back(gen.next());

  const std::uint64_t heap_setup = heap_in_use();
  {
    // finish_install stamps t_begin via env.now(); lanes all sit at t = 0.
    LaneScope scope(&net.lane_queue(0), 0);
    build_consistent_network(overlay, v);
  }
  const double build_ms = ms_since(t_start);
  const std::uint64_t heap1 = heap_in_use();
  std::size_t rev_bytes = 0, rev_live = 0, tbl_bytes = 0;
  for (const auto& node : overlay.nodes()) {
    rev_bytes += node->table().reverse_neighbors().bytes_used();
    rev_live += node->table().reverse_neighbors().size() * sizeof(NodeId);
    tbl_bytes += node->table().bytes_used();
  }
  std::printf(
      "  breakdown: setup %.1f MB, arena %.1f/%.1f MB used/reserved, "
      "tables %.1f MB (reverse %.1f cap / %.1f live), sizeof(Node)=%zu\n",
      static_cast<double>(heap_setup - heap0) / (1024.0 * 1024.0),
      static_cast<double>(overlay.table_arena().bytes_used()) /
          (1024.0 * 1024.0),
      static_cast<double>(overlay.table_arena().bytes_reserved()) /
          (1024.0 * 1024.0),
      static_cast<double>(tbl_bytes) / (1024.0 * 1024.0),
      static_cast<double>(rev_bytes) / (1024.0 * 1024.0),
      static_cast<double>(rev_live) / (1024.0 * 1024.0), sizeof(Node));

  const std::uint64_t heap_bytes = heap1 > heap0 ? heap1 - heap0 : 0;
  const double bytes_per_node =
      n > 0 ? static_cast<double>(heap_bytes) / static_cast<double>(n) : 0.0;
  const bool within_budget = heap_bytes <= budget_mb * 1024 * 1024;

  std::printf("  built in %.0f ms: %.1f MB heap, %.0f bytes/node%s\n",
              build_ms, static_cast<double>(heap_bytes) / (1024.0 * 1024.0),
              bytes_per_node, within_budget ? "" : "  [OVER BUDGET]");

  // Settle: the m-join wave as driver actions — the same add_node +
  // start_join sequence at the same instants for every K, with seeded
  // gateway picks, so the merged event history (and the digest below) is
  // shard-invariant. Arrivals are spaced 0.05 ms apart: dense enough that
  // thousands of joins are in flight at once, sparse enough that the
  // arrival order is unambiguous.
  const auto t_settle = Clock::now();
  Rng rng(7);
  for (std::size_t i = 0; i < wave; ++i) {
    const NodeId id = w[i];
    const NodeId gw = v[rng.next_below(n)];
    const SimTime at = 0.05 * static_cast<double>(i + 1);
    net.driver().schedule_action(at, [&overlay, &net, id, gw] {
      Node& joiner = overlay.add_node(id);
      const std::uint32_t lane = net.lane_of_host(overlay.host_of(id));
      LaneScope scope(&net.lane_queue(lane), lane);
      joiner.start_join(gw);
    });
  }
  net.driver().drain();
  const double settle_wall_ms = ms_since(t_settle);
  const double settle_sim_ms = net.driver().last_event_time();
  const bool settled = overlay.all_in_system();
  const double wall_ms = ms_since(t_start);

  std::printf("  wave of %zu settled in %.0f ms wall / %.0f ms sim over %llu "
              "epochs (%llu cross-shard msgs)%s\n",
              wave, settle_wall_ms, settle_sim_ms,
              static_cast<unsigned long long>(net.driver().epochs_run()),
              static_cast<unsigned long long>(net.cross_shard_messages()),
              settled ? "" : "  [UNSETTLED]");

  // The shard-invariant outcome fold. rel_in_flight is 0 at quiescence on
  // every healthy run; folding it keeps a leak from going unnoticed.
  const Overlay::Totals totals = overlay.totals();
  Digest digest;
  digest.add(n);
  digest.add(wave);
  digest.add(net.driver().events_processed());
  digest.add(totals.messages);
  digest.add(totals.bytes);
  digest.add(static_cast<std::uint64_t>(settle_sim_ms * 1000.0));
  digest.add(settled ? 1 : 0);
  digest.add(net.rel_in_flight());

  obs::BenchReport report("scale");
  report.param("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  report.param("n", static_cast<std::uint64_t>(n));
  report.param("wave", static_cast<std::uint64_t>(wave));
  report.param("budget_mb", budget_mb);
  report.param("base", static_cast<std::uint64_t>(params.base));
  report.param("digits", static_cast<std::uint64_t>(params.num_digits));
  report.param("digest", digest.h);
  auto& reg = report.metrics();
  reg.set_named("scale.bytes_per_node", bytes_per_node);
  reg.set_named("scale.heap_bytes", static_cast<double>(heap_bytes));
  reg.set_named("scale.build_ms", build_ms);
  reg.set_named("scale.settle_wall_ms", settle_wall_ms);
  reg.set_named("scale.settle_sim_ms", settle_sim_ms);
  reg.set_named("scale.maxrss_kb", static_cast<double>(max_rss_kb()));
  reg.set_named("scale.within_budget", within_budget ? 1.0 : 0.0);
  // Sharded-execution schema fields (hcstat rejects scale reports without
  // them; tools/hcstat.cpp).
  reg.set_named("scale.shards", static_cast<double>(net.num_lanes()));
  reg.set_named("scale.epoch_ms", net.epoch_ms());
  reg.set_named("scale.wall_ms", wall_ms);
  reg.set_named("scale.peak_rss", static_cast<double>(max_rss_kb()) * 1024.0);
  reg.set_named("scale.epochs", static_cast<double>(net.driver().epochs_run()));
  reg.set_named("scale.cross_shard_messages",
                static_cast<double>(net.cross_shard_messages()));
  if (kBaselineBytesPerNode10k > 0.0) {
    reg.set_named("scale.baseline_bytes_per_node_10k",
                  kBaselineBytesPerNode10k);
    reg.set_named("scale.improvement_x",
                  bytes_per_node > 0.0
                      ? kBaselineBytesPerNode10k / bytes_per_node
                      : 0.0);
  }
  write_report(report);

  if (!within_budget) {
    std::fprintf(stderr, "FAIL: heap %.1f MB exceeds budget %llu MB\n",
                 static_cast<double>(heap_bytes) / (1024.0 * 1024.0),
                 static_cast<unsigned long long>(budget_mb));
    return 1;
  }
  if (!settled) {
    std::fprintf(stderr, "FAIL: join wave did not settle\n");
    return 1;
  }
  if (ceiling != 0 && bytes_per_node > static_cast<double>(ceiling)) {
    std::fprintf(stderr,
                 "FAIL: %.0f bytes/node exceeds ceiling %llu (regression)\n",
                 bytes_per_node, static_cast<unsigned long long>(ceiling));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hcube::bench

int main(int argc, char** argv) { return hcube::bench::main_impl(argc, argv); }
