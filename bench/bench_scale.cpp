// Memory-budgeted scale bench: how large an overlay fits in a stated heap
// budget, and what each node costs.
//
// Builds a consistent network of n nodes offline (SuffixTrie builder, no
// protocol traffic), measuring the heap delta across overlay construction:
// bytes/node is that delta divided by n. A small join wave then runs on top
// of the built network so "settle time" reflects live-protocol hot paths at
// scale, not just offline construction. The report carries the measured
// bytes/node next to the pre-refactor baseline at n = 10k, so bench-trend
// can assert the dense-storage layout keeps its margin (the CI job passes
// --max-bytes-per-node as a hard ceiling; exceeding it fails the build).
//
// Usage: bench_scale [--n N] [--budget-mb MB] [--wave M]
//                    [--max-bytes-per-node B] [--quick]
//   --quick               n=10'000 (CI bench-trend); default n=100'000
//   --budget-mb           heap budget the build must fit in (default 2048)
//   --max-bytes-per-node  hard ceiling; nonzero exit when exceeded

#include <malloc.h>
#include <sys/resource.h>

#include <chrono>
#include <cstdio>

#include "bench_common.h"

namespace hcube::bench {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Heap bytes currently handed out by the allocator (glibc): ordinary
// arena allocations plus mmapped blocks. Good to within allocator
// bookkeeping; both snapshots carry the same bias so the delta is clean.
std::uint64_t heap_in_use() {
#if defined(__GLIBC__) && (__GLIBC__ > 2 || __GLIBC_MINOR__ >= 33)
  const struct mallinfo2 mi = mallinfo2();
  return static_cast<std::uint64_t>(mi.uordblks) +
         static_cast<std::uint64_t>(mi.hblkhd);
#else
  return 0;  // non-glibc: report 0, the bench still runs
#endif
}

std::uint64_t max_rss_kb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);
}

// Pre-refactor layout measured at n = 10k (array-of-structs NeighborTable,
// 65-byte inline-digit NodeId, unordered_map reverse/backup sides), same
// IdParams{16, 8} and build path as below. The dense-index layout must stay
// >= 4x below this (ISSUE 6 acceptance); CI additionally enforces the
// --max-bytes-per-node ceiling on every run.
constexpr double kBaselineBytesPerNode10k = 16950.0;

int main_impl(int argc, char** argv) {
  const bool quick = flag_present(argc, argv, "--quick");
  const std::size_t n = static_cast<std::size_t>(
      flag_u64(argc, argv, "--n", quick ? 10'000 : 100'000));
  const std::uint64_t budget_mb = flag_u64(argc, argv, "--budget-mb", 2048);
  const std::size_t wave = static_cast<std::size_t>(
      flag_u64(argc, argv, "--wave", std::min<std::uint64_t>(64, n / 16)));
  const std::uint64_t ceiling =
      flag_u64(argc, argv, "--max-bytes-per-node", 0);
  const IdParams params{16, 8};

  std::printf("scale: n=%zu wave=%zu budget=%lluMB base=%u digits=%u\n", n,
              wave, static_cast<unsigned long long>(budget_mb),
              params.base, params.num_digits);

  const std::uint64_t heap0 = heap_in_use();
  const auto t_build = Clock::now();

  EventQueue queue;
  SyntheticLatency latency(static_cast<std::uint32_t>(n + wave), 5.0, 120.0,
                           /*seed=*/1);
  ProtocolOptions options;
  Overlay overlay(params, options, queue, latency);

  UniqueIdGenerator gen(params, 0x5ca1eULL);
  std::vector<NodeId> v, w;
  v.reserve(n);
  w.reserve(wave);
  for (std::size_t i = 0; i < n; ++i) v.push_back(gen.next());
  for (std::size_t i = 0; i < wave; ++i) w.push_back(gen.next());

  build_consistent_network(overlay, v);
  const double build_ms = ms_since(t_build);
  const std::uint64_t heap1 = heap_in_use();

  const std::uint64_t heap_bytes = heap1 > heap0 ? heap1 - heap0 : 0;
  const double bytes_per_node =
      n > 0 ? static_cast<double>(heap_bytes) / static_cast<double>(n) : 0.0;
  const bool within_budget = heap_bytes <= budget_mb * 1024 * 1024;

  std::printf("  built in %.0f ms: %.1f MB heap, %.0f bytes/node%s\n",
              build_ms, static_cast<double>(heap_bytes) / (1024.0 * 1024.0),
              bytes_per_node, within_budget ? "" : "  [OVER BUDGET]");

  // Settle: a join wave on the built network, run to quiescence. This is
  // the live-protocol cost of the storage layout (table scans, reverse
  // sets, backup probes), not the offline builder.
  const auto t_settle = Clock::now();
  Rng rng(7);
  join_concurrently(overlay, w, v, rng, /*window_ms=*/0.0);
  const double settle_wall_ms = ms_since(t_settle);
  const double settle_sim_ms = queue.now();
  const bool settled = overlay.all_in_system();

  std::printf("  wave of %zu settled in %.0f ms wall / %.0f ms sim%s\n", wave,
              settle_wall_ms, settle_sim_ms, settled ? "" : "  [UNSETTLED]");

  obs::BenchReport report("scale");
  report.param("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  report.param("n", static_cast<std::uint64_t>(n));
  report.param("wave", static_cast<std::uint64_t>(wave));
  report.param("budget_mb", budget_mb);
  report.param("base", static_cast<std::uint64_t>(params.base));
  report.param("digits", static_cast<std::uint64_t>(params.num_digits));
  auto& reg = report.metrics();
  reg.set_named("scale.bytes_per_node", bytes_per_node);
  reg.set_named("scale.heap_bytes", static_cast<double>(heap_bytes));
  reg.set_named("scale.build_ms", build_ms);
  reg.set_named("scale.settle_wall_ms", settle_wall_ms);
  reg.set_named("scale.settle_sim_ms", settle_sim_ms);
  reg.set_named("scale.maxrss_kb", static_cast<double>(max_rss_kb()));
  reg.set_named("scale.within_budget", within_budget ? 1.0 : 0.0);
  if (kBaselineBytesPerNode10k > 0.0) {
    reg.set_named("scale.baseline_bytes_per_node_10k",
                  kBaselineBytesPerNode10k);
    reg.set_named("scale.improvement_x",
                  bytes_per_node > 0.0
                      ? kBaselineBytesPerNode10k / bytes_per_node
                      : 0.0);
  }
  write_report(report);

  if (!within_budget) {
    std::fprintf(stderr, "FAIL: heap %.1f MB exceeds budget %llu MB\n",
                 static_cast<double>(heap_bytes) / (1024.0 * 1024.0),
                 static_cast<unsigned long long>(budget_mb));
    return 1;
  }
  if (!settled) {
    std::fprintf(stderr, "FAIL: join wave did not settle\n");
    return 1;
  }
  if (ceiling != 0 && bytes_per_node > static_cast<double>(ceiling)) {
    std::fprintf(stderr,
                 "FAIL: %.0f bytes/node exceeds ceiling %llu (regression)\n",
                 bytes_per_node, static_cast<unsigned long long>(ceiling));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hcube::bench

int main(int argc, char** argv) { return hcube::bench::main_impl(argc, argv); }
