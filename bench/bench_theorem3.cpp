// Experiment E4 — Theorem 3: for every joining node, the number of CpRstMsg
// plus JoinWaitMsg it sends is at most d + 1, across parameter sweeps and
// under heavy concurrency. Prints the observed per-joiner maximum next to
// the bound (a violation would mean the protocol is wrong, not the model).
#include <cstdio>
#include <string>

#include "analysis/join_cost.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto seed = bench::flag_u64(argc, argv, "--seed", 11);

  obs::BenchReport report("theorem3");
  report.param("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  report.param("seed", seed);
  // Registered up front so a clean run still exports t3.violations = 0 for
  // CI's bench-trend gate to read.
  report.metrics().counter("t3.violations");

  struct Case {
    std::uint32_t b, d;
    std::size_t n, m;
  };
  const Case cases[] = {
      {2, 12, 200, 200},   {4, 8, 400, 300},   {8, 6, 500, 400},
      {16, 8, 1000, 500},  {16, 40, 1000, 500}, {16, 8, 30, 300},
      {4, 6, 5, 200},
  };

  std::printf("# Theorem 3: per-joiner #CpRstMsg + #JoinWaitMsg <= d + 1\n");
  std::printf("%4s %4s %7s %7s | %9s %9s %6s | %s\n", "b", "d", "n", "m",
              "max-seen", "mean", "bound", "verdict");
  bool all_ok = true;
  for (const auto& c : cases) {
    bench::JoinWaveConfig cfg;
    cfg.params = IdParams{c.b, c.d};
    cfg.n = quick ? std::max<std::size_t>(c.n / 4, 4) : c.n;
    cfg.m = quick ? std::max<std::size_t>(c.m / 4, 4) : c.m;
    cfg.seed = seed;
    cfg.topology_latency = false;  // latency model is irrelevant to the bound
    const auto result = bench::run_join_wave(cfg);
    const auto bound = theorem3_bound(cfg.params);
    const bool ok = result.all_in_system && result.consistent &&
                    static_cast<std::uint64_t>(result.copy_wait.max()) <=
                        bound;
    all_ok = all_ok && ok;

    const std::string tag = "t3.b" + std::to_string(c.b) + ".d" +
                            std::to_string(c.d) + ".n" + std::to_string(cfg.n) +
                            ".m" + std::to_string(cfg.m);
    auto& reg = report.metrics();
    reg.set_named(tag + ".copy_wait_max",
                  static_cast<double>(result.copy_wait.max()));
    reg.set_named(tag + ".copy_wait_mean", result.copy_wait.mean());
    reg.set_named(tag + ".bound", static_cast<double>(bound));
    bench::observe_distribution(reg, tag + ".copy_wait", result.copy_wait);
    if (!ok) reg.add_named("t3.violations");
    std::printf("%4u %4u %7zu %7zu | %9lld %9.3f %6llu | %s\n", c.b, c.d,
                cfg.n, cfg.m, static_cast<long long>(result.copy_wait.max()),
                result.copy_wait.mean(),
                static_cast<unsigned long long>(bound),
                ok ? "holds" : "VIOLATION");
  }
  std::printf("\n%s\n", all_ok ? "Theorem 3 bound held in every run."
                               : "THEOREM 3 VIOLATED — investigate!");
  bench::write_report(report);
  return all_ok ? 0 : 1;
}
