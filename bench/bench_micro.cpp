// Experiment E8 — micro-benchmarks (google-benchmark) for the hot paths of
// the library: table writes/snapshots, suffix-trie queries, routing hops,
// consistency audits, and end-to-end single joins in the simulator.
#include <benchmark/benchmark.h>

#include "core/builder.h"
#include "core/consistency.h"
#include "core/routing.h"
#include "ids/sha1.h"
#include "ids/suffix_trie.h"
#include "topology/latency.h"

namespace hcube {
namespace {

std::vector<NodeId> ids_for(const IdParams& params, std::size_t n,
                            std::uint64_t seed) {
  UniqueIdGenerator gen(params, seed);
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(gen.next());
  return ids;
}

void BM_NodeIdCsuf(benchmark::State& state) {
  const IdParams params{16, 40};
  const auto ids = ids_for(params, 256, 1);
  std::size_t i = 0, acc = 0;
  for (auto _ : state) {
    acc += ids[i % 256].csuf_len(ids[(i * 7 + 3) % 256]);
    ++i;
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_NodeIdCsuf);

void BM_SuffixTrieInsert(benchmark::State& state) {
  const IdParams params{16, 8};
  const auto ids =
      ids_for(params, static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    SuffixTrie trie(params);
    for (const auto& id : ids) trie.insert(id);
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixTrieInsert)->Arg(256)->Arg(2048);

void BM_SuffixTrieNotifyLen(benchmark::State& state) {
  const IdParams params{16, 8};
  const auto ids = ids_for(params, 4096, 3);
  SuffixTrie trie(params);
  for (std::size_t i = 0; i < 4095; ++i) trie.insert(ids[i]);
  for (auto _ : state)
    benchmark::DoNotOptimize(trie.notify_suffix_len(ids[4095]));
}
BENCHMARK(BM_SuffixTrieNotifyLen);

void BM_TableSnapshotFull(benchmark::State& state) {
  const IdParams params{16, 40};
  const auto ids = ids_for(params, 600, 4);
  NeighborTable table(params, ids[0]);
  SuffixTrie trie(params);
  for (const auto& id : ids) trie.insert(id);
  trie.for_each_entry_candidate(
      ids[0], [&](std::size_t level, Digit j, const NodeId& first) {
        table.set(static_cast<std::uint32_t>(level), j, first,
                  NeighborState::kS);
      });
  for (auto _ : state) benchmark::DoNotOptimize(table.snapshot_full());
}
BENCHMARK(BM_TableSnapshotFull);

void BM_BuildConsistentNetwork(benchmark::State& state) {
  const IdParams params{16, 8};
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = ids_for(params, n, 5);
  for (auto _ : state) {
    EventQueue queue;
    ConstantLatency latency(static_cast<std::uint32_t>(n), 1.0);
    Overlay overlay(params, {}, queue, latency);
    build_consistent_network(overlay, ids);
    benchmark::DoNotOptimize(overlay.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildConsistentNetwork)->Arg(512)->Arg(4096);

void BM_Route(benchmark::State& state) {
  const IdParams params{16, 8};
  const auto ids = ids_for(params, 4096, 6);
  EventQueue queue;
  ConstantLatency latency(4096, 1.0);
  Overlay overlay(params, {}, queue, latency);
  build_consistent_network(overlay, ids);
  const NetworkView net = view_of(overlay);
  std::size_t i = 0, hops = 0;
  for (auto _ : state) {
    const auto r = route(net, ids[i % 4096], ids[(i * 13 + 7) % 4096]);
    hops += r.hops();
    ++i;
  }
  benchmark::DoNotOptimize(hops);
}
BENCHMARK(BM_Route);

void BM_ConsistencyCheck(benchmark::State& state) {
  const IdParams params{16, 8};
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = ids_for(params, n, 7);
  EventQueue queue;
  ConstantLatency latency(static_cast<std::uint32_t>(n), 1.0);
  Overlay overlay(params, {}, queue, latency);
  build_consistent_network(overlay, ids);
  const NetworkView net = view_of(overlay);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_consistency(net).consistent());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ConsistencyCheck)->Arg(512)->Arg(2048);

void BM_SingleJoinEndToEnd(benchmark::State& state) {
  const IdParams params{16, 8};
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto ids = ids_for(params, n + 1, 8);
  const std::vector<NodeId> v(ids.begin(), ids.end() - 1);
  for (auto _ : state) {
    EventQueue queue;
    SyntheticLatency latency(static_cast<std::uint32_t>(n + 1), 5.0, 120.0,
                             9);
    Overlay overlay(params, {}, queue, latency);
    build_consistent_network(overlay, v);
    overlay.schedule_join(ids[n], v[0], 0.0);
    overlay.run_to_quiescence();
    benchmark::DoNotOptimize(overlay.all_in_system());
  }
}
BENCHMARK(BM_SingleJoinEndToEnd)->Arg(512)->Arg(2048);

void BM_Sha1IdFromName(benchmark::State& state) {
  const IdParams params{16, 40};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        id_from_name("object/" + std::to_string(i++), params));
  }
}
BENCHMARK(BM_Sha1IdFromName);

}  // namespace
}  // namespace hcube

BENCHMARK_MAIN();
