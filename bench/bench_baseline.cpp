// Experiment E6 — the paper's qualitative claim against multicast-based
// joins (Tapestry / Hildrum et al., Section 1):
//
//   "This approach has the disadvantage of requiring many existing nodes to
//    store and process extra states as well as send and receive messages on
//    behalf of joining nodes. We take a very different approach ... We put
//    the burden of the join process on joining nodes only."
//
// For the same sequence of joins we measure, per join:
//   - multicast baseline: existing nodes touched, existing nodes that hold
//     pending join state, messages processed by existing nodes;
//   - Liu-Lam protocol: pending join state at existing S-nodes (always 0 by
//     construction: Q_r/Q_n/Q_j/Q_sr/Q_sn live only at joining nodes) and
//     join-protocol messages initiated by existing nodes (0 as well — they
//     only reply).
#include <cstdio>

#include "baseline/multicast_join.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto seed = bench::flag_u64(argc, argv, "--seed", 31);
  // b = 16 keeps notification sets a handful of nodes wide (expected size
  // up to ~b), which is where the multicast fan-out and its pending lists
  // are most visible.
  const IdParams params{16, 8};
  const auto n = bench::flag_u64(argc, argv, "--n", quick ? 300 : 2000);
  const auto m = bench::flag_u64(argc, argv, "--m", quick ? 50 : 200);

  UniqueIdGenerator gen(params, seed);
  std::vector<NodeId> v, w;
  for (std::size_t i = 0; i < n; ++i) v.push_back(gen.next());
  for (std::size_t i = 0; i < m; ++i) w.push_back(gen.next());

  // ---- multicast baseline (sequential joins) ----
  MulticastNetwork baseline(params, v);
  StreamingStats touched, pending, msgs;
  {
    Rng rng(seed);
    std::vector<NodeId> members = v;
    for (const NodeId& x : w) {
      const auto metrics =
          baseline.join(x, members[rng.next_below(members.size())]);
      touched.add(static_cast<double>(metrics.existing_nodes_touched));
      pending.add(
          static_cast<double>(metrics.existing_nodes_with_pending_state));
      msgs.add(static_cast<double>(metrics.messages_at_existing()));
      members.push_back(x);
    }
  }
  const bool baseline_consistent =
      check_consistency(baseline.view()).consistent();

  // ---- Liu-Lam protocol (same memberships, sequential joins) ----
  EventQueue queue;
  SyntheticLatency latency(static_cast<std::uint32_t>(n + m), 5.0, 120.0,
                           seed);
  Overlay overlay(params, {}, queue, latency);
  build_consistent_network(overlay, v);
  {
    Rng rng(seed);
    join_sequentially(overlay, w, v, rng);
  }
  const bool ours_consistent =
      overlay.all_in_system() &&
      check_consistency(view_of(overlay)).consistent();

  // Existing-node burden under our protocol: join messages initiated by
  // V-nodes (they never initiate; they only reply) and pending state.
  std::uint64_t v_initiated = 0;
  double v_received = 0.0, v_big = 0.0;
  for (const NodeId& u : v) {
    const JoinStats& s = overlay.at(u).join_stats();
    v_initiated += s.sent_of(MessageType::kCpRst) +
                   s.sent_of(MessageType::kJoinWait) +
                   s.sent_of(MessageType::kJoinNoti);
    for (std::size_t t = 0; t < kNumMessageTypes; ++t) {
      v_received += static_cast<double>(s.received[t]);
      if (is_big_request(static_cast<MessageType>(t)))
        v_big += static_cast<double>(s.received[t]);
    }
  }

  std::printf("# E6: existing-node burden, multicast baseline vs this "
              "protocol\n");
  std::printf("# b=%u d=%u, n=%llu existing nodes, m=%llu joins\n\n",
              params.base, params.num_digits,
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m));
  std::printf("multicast baseline (per join):\n");
  std::printf("  existing nodes touched:        mean %8.2f  max %6.0f\n",
              touched.mean(), touched.max());
  std::printf("  existing nodes holding state:  mean %8.2f  max %6.0f\n",
              pending.mean(), pending.max());
  std::printf("  messages at existing nodes:    mean %8.2f  max %6.0f\n",
              msgs.mean(), msgs.max());
  std::printf("  network consistent afterwards: %s\n\n",
              baseline_consistent ? "yes" : "NO");
  std::printf("this protocol (per join):\n");
  std::printf("  join messages initiated by existing nodes: %llu\n",
              static_cast<unsigned long long>(v_initiated));
  std::printf("  existing nodes holding pending join state: 0 (by "
              "construction: Q_* live only at T-nodes)\n");
  std::printf("  messages at existing nodes:    mean %8.2f"
              " (%.2f requests to answer, %.2f stateless bookkeeping"
              " notifications)\n",
              v_received / static_cast<double>(m),
              v_big / static_cast<double>(m),
              (v_received - v_big) / static_cast<double>(m));
  std::printf("  network consistent afterwards: %s\n",
              ours_consistent ? "yes" : "NO");
  std::printf("\n# Existing nodes under this protocol never forward, queue,"
              " or track a join:\n"
              "# each message is answered (or merely noted) immediately and"
              " forgotten. Under\n"
              "# the multicast baseline every interior tree node holds the"
              " joiner in a pending\n"
              "# list across a full subtree round trip.\n");
  return baseline_consistent && ours_consistent ? 0 : 1;
}
