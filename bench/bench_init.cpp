// Experiment E7 — Section 6.1 network initialization: grow a network from a
// single seed node to n members using only the join protocol, both
// sequentially and as one concurrent burst, verifying consistency and
// reporting the message cost per join as the network grows.
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto seed = bench::flag_u64(argc, argv, "--seed", 41);
  const IdParams params{16, 8};

  std::printf("# Section 6.1: network initialization from one seed node\n");
  std::printf("# b=16 d=8; every node joins via the protocol\n\n");
  std::printf("%-12s %7s | %9s %9s %9s | %11s %10s\n", "mode", "n",
              "msgs/join", "big/join", "bytes/join", "sim-time-ms",
              "consistent");

  for (const std::size_t n : {quick ? 64u : 256u, quick ? 128u : 1024u,
                              quick ? 256u : 4096u}) {
    for (const bool concurrent : {false, true}) {
      EventQueue queue;
      SyntheticLatency latency(static_cast<std::uint32_t>(n), 5.0, 120.0,
                               seed);
      Overlay overlay(params, {}, queue, latency);
      UniqueIdGenerator gen(params, seed + n);
      std::vector<NodeId> ids;
      for (std::size_t i = 0; i < n; ++i) ids.push_back(gen.next());
      Rng rng(seed);
      initialize_network(overlay, ids, rng, concurrent);

      const bool ok = overlay.all_in_system() &&
                      check_consistency(view_of(overlay)).consistent();
      const auto& totals = overlay.totals();
      std::uint64_t big = 0;
      for (std::size_t t = 0; t < kNumMessageTypes; ++t)
        if (is_big_request(static_cast<MessageType>(t)))
          big += totals.sent[t];
      const double joins = static_cast<double>(n - 1);
      std::printf("%-12s %7zu | %9.1f %9.2f %9.0f | %11.0f %10s\n",
                  concurrent ? "concurrent" : "sequential", n,
                  static_cast<double>(totals.messages) / joins,
                  static_cast<double>(big) / joins,
                  static_cast<double>(totals.bytes) / joins, queue.now(),
                  ok ? "yes" : "NO");
    }
  }
  std::printf("\n# big/join counts CpRstMsg + JoinWaitMsg + JoinNotiMsg "
              "requests (replies are 1:1)\n");
  return 0;
}
