// Experiment E10 (extension) — routing stretch before/after neighbor-table
// optimization (the paper's problem 3, property P2 of Section 1).
//
// Stretch of a route = (sum of per-hop underlay latencies along the overlay
// path) / (direct underlay latency between the endpoints). The join
// protocol guarantees consistency but picks arbitrary class members, so
// stretch starts high; the nearest-neighbor post-pass (core/optimize.h)
// should cut it substantially while leaving the network consistent.
#include <cstdio>

#include "core/optimize.h"
#include "core/routing.h"
#include "bench_common.h"

namespace {

using namespace hcube;

struct StretchStats {
  StreamingStats stretch;
  StreamingStats path_ms;
};

StretchStats measure(Overlay& overlay, LatencyModel& latency,
                     std::uint64_t pairs, std::uint64_t seed) {
  const NetworkView net = view_of(overlay);
  std::vector<NodeId> ids;
  for (const auto& node : overlay.nodes())
    if (!node->has_departed()) ids.push_back(node->id());
  Rng rng(seed);
  StretchStats stats;
  for (std::uint64_t i = 0; i < pairs; ++i) {
    const NodeId& a = ids[rng.next_below(ids.size())];
    const NodeId& b = ids[rng.next_below(ids.size())];
    if (a == b) continue;
    const auto r = route(net, a, b);
    HCUBE_CHECK_MSG(r.success, "route failed on a consistent network");
    double path_ms = 0.0;
    for (std::size_t h = 0; h + 1 < r.path.size(); ++h)
      path_ms += latency.latency_ms(overlay.host_of(r.path[h]),
                                    overlay.host_of(r.path[h + 1]));
    const double direct = latency.latency_ms(overlay.host_of(a),
                                             overlay.host_of(b));
    if (direct <= 0.0) continue;
    stats.stretch.add(path_ms / direct);
    stats.path_ms.add(path_ms);
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hcube;
  const bool quick = bench::flag_present(argc, argv, "--quick");
  const auto n = bench::flag_u64(argc, argv, "--n", quick ? 400 : 2000);
  const auto pairs = bench::flag_u64(argc, argv, "--pairs", quick ? 1000 : 5000);
  const auto seed = bench::flag_u64(argc, argv, "--seed", 61);
  const IdParams params{16, 8};

  // A transit-stub underlay gives the latency structure (near/far hosts)
  // that makes proximity optimization meaningful.
  Rng rng(seed);
  TransitStubParams ts;
  auto latency = make_transit_stub_latency(
      ts, static_cast<std::uint32_t>(n), rng);
  EventQueue queue;
  Overlay overlay(params, {}, queue, *latency);
  UniqueIdGenerator gen(params, seed);
  std::vector<NodeId> ids;
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(gen.next());
  build_consistent_network(overlay, ids);

  std::printf("# E10: routing stretch before/after nearest-neighbor table "
              "optimization\n");
  std::printf("# b=16 d=8, n=%llu over a %u-router transit-stub underlay, "
              "%llu sampled routes\n\n",
              static_cast<unsigned long long>(n), ts.total_routers(),
              static_cast<unsigned long long>(pairs));
  std::printf("%-22s | %8s %8s %8s | %10s\n", "tables", "stretch",
              "p-mean-ms", "max", "consistent");

  const auto before = measure(overlay, *latency, pairs, seed + 1);
  std::printf("%-22s | %8.2f %8.1f %8.1f | %10s\n", "as-joined (arbitrary)",
              before.stretch.mean(), before.path_ms.mean(),
              before.stretch.max(),
              check_consistency(view_of(overlay)).consistent() ? "yes" : "NO");

  const auto opt = optimize_tables(overlay, *latency, /*max_candidates=*/32);
  const auto after = measure(overlay, *latency, pairs, seed + 1);
  std::printf("%-22s | %8.2f %8.1f %8.1f | %10s\n", "nearest-neighbor",
              after.stretch.mean(), after.path_ms.mean(),
              after.stretch.max(),
              check_consistency(view_of(overlay)).consistent() ? "yes" : "NO");

  std::printf("\n# optimizer: %llu entries examined, %llu rebound, "
              "%llu candidates scanned\n",
              static_cast<unsigned long long>(opt.entries_examined),
              static_cast<unsigned long long>(opt.entries_rebound),
              static_cast<unsigned long long>(opt.candidates_scanned));
  const bool improved = after.stretch.mean() < before.stretch.mean();
  std::printf("# stretch %s (%.2f -> %.2f)\n",
              improved ? "improved" : "DID NOT IMPROVE",
              before.stretch.mean(), after.stretch.mean());
  return improved ? 0 : 1;
}
