// Shared workload runner for the benchmark/experiment binaries.
//
// Each bench regenerates one table or figure of the paper (see DESIGN.md's
// per-experiment index). The common piece is a "join wave": build a
// consistent network of n nodes, join m more concurrently, and collect
// per-joiner message statistics.
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/consistency.h"
#include "core/overlay.h"
#include "core/routing.h"
#include "obs/bench_report.h"
#include "obs/collect.h"
#include "topology/latency.h"
#include "util/stats.h"

namespace hcube::bench {

struct JoinWaveConfig {
  IdParams params{16, 8};
  std::size_t n = 3096;  // initial consistent network size
  std::size_t m = 1000;  // concurrent joiners
  std::uint64_t seed = 1;
  ProtocolOptions options;
  // true: transit-stub router topology (as in the paper's GT-ITM setup);
  // false: cheap synthetic pairwise latencies.
  bool topology_latency = true;
  std::uint32_t routers_scale = 1;  // multiplies the default 2080 routers
  // If set, the full overlay metric snapshot (obs::collect) is merged into
  // this registry before the wave's overlay is torn down.
  obs::MetricsRegistry* collect_into = nullptr;
};

struct JoinWaveResult {
  EmpiricalDistribution join_noti;  // #JoinNotiMsg sent, per joiner
  EmpiricalDistribution copy_wait;  // #CpRstMsg + #JoinWaitMsg, per joiner
  EmpiricalDistribution spe_noti;   // #SpeNotiMsg sent, per joiner
  StreamingStats join_duration_ms;  // t^e_x - t^b_x
  Overlay::Totals totals;
  std::uint64_t events = 0;
  double sim_ms = 0.0;
  bool all_in_system = false;
  bool consistent = false;
};

inline JoinWaveResult run_join_wave(const JoinWaveConfig& cfg) {
  EventQueue queue;
  Rng rng(cfg.seed);
  std::unique_ptr<LatencyModel> latency;
  if (cfg.topology_latency) {
    TransitStubParams ts;
    ts.transit_nodes_per_domain *= cfg.routers_scale;
    latency = make_transit_stub_latency(
        ts, static_cast<std::uint32_t>(cfg.n + cfg.m), rng);
  } else {
    latency = std::make_unique<SyntheticLatency>(
        static_cast<std::uint32_t>(cfg.n + cfg.m), 5.0, 120.0, cfg.seed);
  }
  Overlay overlay(cfg.params, cfg.options, queue, *latency);

  UniqueIdGenerator gen(cfg.params, cfg.seed ^ 0x5eed);
  std::vector<NodeId> v, w;
  v.reserve(cfg.n);
  w.reserve(cfg.m);
  for (std::size_t i = 0; i < cfg.n; ++i) v.push_back(gen.next());
  for (std::size_t i = 0; i < cfg.m; ++i) w.push_back(gen.next());

  build_consistent_network(overlay, v);
  // As in the paper's simulations, all joins start at the same time.
  join_concurrently(overlay, w, v, rng, /*window_ms=*/0.0);

  JoinWaveResult result;
  for (const NodeId& x : w) {
    const JoinStats& s = overlay.at(x).join_stats();
    result.join_noti.add(
        static_cast<std::int64_t>(s.sent_of(MessageType::kJoinNoti)));
    result.copy_wait.add(static_cast<std::int64_t>(s.copy_plus_wait()));
    result.spe_noti.add(
        static_cast<std::int64_t>(s.sent_of(MessageType::kSpeNoti)));
    result.join_duration_ms.add(s.t_end - s.t_begin);
  }
  result.totals = overlay.totals();
  result.events = queue.events_processed();
  result.sim_ms = queue.now();
  result.all_in_system = overlay.all_in_system();
  result.consistent = check_consistency(view_of(overlay)).consistent();
  if (cfg.collect_into) obs::collect(overlay, *cfg.collect_into);
  return result;
}

// Folds a per-joiner empirical distribution into a registry log-histogram,
// so bench JSON carries the distribution shape, not just its mean.
inline void observe_distribution(obs::MetricsRegistry& reg,
                                 std::string_view name,
                                 const EmpiricalDistribution& dist) {
  const auto id = reg.histogram(name);
  for (const auto& [value, count] : dist.buckets())
    for (std::uint64_t i = 0; i < count; ++i)
      reg.observe(id, static_cast<double>(value));
}

// Writes BENCH_<name>.json into the working directory and echoes the path
// (CI's bench-trend job uploads these as artifacts).
inline void write_report(obs::BenchReport& report) {
  const std::string path = report.write();
  if (path.empty())
    std::fprintf(stderr, "# WARNING: failed to write bench report\n");
  else
    std::printf("\n# metrics: %s\n", path.c_str());
}

// Minimal flag parsing: --key value (integers only).
inline std::uint64_t flag_u64(int argc, char** argv, const char* name,
                              std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0)
      return std::strtoull(argv[i + 1], nullptr, 10);
  }
  return fallback;
}

inline bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

}  // namespace hcube::bench
