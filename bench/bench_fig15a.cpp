// Experiment E1 — Figure 15(a): theoretical upper bound of E(J), the
// expected number of JoinNotiMsg sent by a joining node, when a set of m
// nodes joins a consistent network of n nodes concurrently (Theorem 5).
//
// Reproduces the four curves of the paper's Figure 15(a):
//   m=500/1000, b=16, d=40   and   m=500/1000, b=16, d=8
// over n = 10,000 .. 100,000. The paper's curves rise slowly (roughly one
// message per decade of n) and sit in the 3-9 band; d barely matters (the
// notification level distribution depends on n through the suffix tail,
// which is identical for d=8 and d=40 at these n).
#include <cstdio>
#include <string>

#include "analysis/join_cost.h"
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace hcube;
  const auto n_lo = bench::flag_u64(argc, argv, "--n-lo", 10000);
  const auto n_hi = bench::flag_u64(argc, argv, "--n-hi", 100000);
  const auto n_step = bench::flag_u64(argc, argv, "--n-step", 10000);

  obs::BenchReport report("fig15a");
  report.param("n_lo", n_lo);
  report.param("n_hi", n_hi);
  report.param("n_step", n_step);

  struct Curve {
    std::uint64_t m;
    std::uint32_t d;
  };
  const Curve curves[] = {{500, 40}, {1000, 40}, {500, 8}, {1000, 8}};

  std::printf("# Figure 15(a): upper bound of E(J) per joining node "
              "(Theorem 5), b=16\n");
  std::printf("%10s", "n");
  for (const auto& c : curves)
    std::printf("  m=%-4llu d=%-2u", static_cast<unsigned long long>(c.m),
                c.d);
  std::printf("\n");

  for (std::uint64_t n = n_lo; n <= n_hi; n += n_step) {
    std::printf("%10llu", static_cast<unsigned long long>(n));
    for (const auto& c : curves) {
      const IdParams params{16, c.d};
      const double bound = expected_join_noti_concurrent_bound(params, n, c.m);
      std::printf("  %11.3f", bound);
      report.metrics().set_named(
          "ej_bound.m" + std::to_string(c.m) + ".d" + std::to_string(c.d) +
              ".n" + std::to_string(n),
          bound);
    }
    std::printf("\n");
  }

  // The two in-text reference points of Section 5.2.
  std::printf("\n# Section 5.2 reference points (b=16):\n");
  for (std::uint32_t d : {8u, 40u}) {
    const IdParams params{16, d};
    std::printf("  n=3096 m=1000 d=%-2u -> bound %.3f (paper: 8.001)\n", d,
                expected_join_noti_concurrent_bound(params, 3096, 1000));
    std::printf("  n=7192 m=1000 d=%-2u -> bound %.3f (paper: 6.986)\n", d,
                expected_join_noti_concurrent_bound(params, 7192, 1000));
  }
  bench::write_report(report);
  return 0;
}
