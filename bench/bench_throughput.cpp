// Messaging-core throughput: messages/sec and allocations/message.
//
// Three raw messaging paths push the same two-endpoint ping-pong workload:
//   legacy   — a faithful replay of the pre-seam send path: the closure-based
//              event queue the pooled one replaced (std::priority_queue of
//              {time, seq, std::function}, reproduced below from the seed
//              implementation) plus the two NodeId registry hash lookups the
//              old Overlay::send_message performed per message
//   sim      — SimTransport: latency-modelled, pooled typed events, hosts
//              pre-resolved (the new steady-state send path)
//   loopback — LoopbackTransport: zero latency, pooled typed events
//   reliable — ReliableTransport over LoopbackTransport: the ARQ decorator
//              on a clean network (acks flow, nothing retransmits); its
//              clean-path overhead must stay allocation-free too
// followed by a protocol-level join wave run over both transports.
//
// Allocations are counted by instrumenting global operator new, warming the
// pools first so the steady-state figure is what is reported. Expected:
// zero allocations/message on the pooled paths, >= 2x legacy throughput on
// the loopback path. The pooled paths bump a MetricsRegistry counter on
// every delivery, so the zero-allocs/message figure covers metric updates:
// registry add() is a pre-interned vector index, not a hash or allocation.
//
// Usage: bench_throughput [--messages N] [--warmup N] [--wave-n N]
//                         [--wave-m N] [--quick]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <queue>
#include <unordered_map>

#include "bench_common.h"
#include "net/loopback_transport.h"
#include "net/reliable_transport.h"
#include "net/sim_transport.h"

// ---------------------------------------------------------------------------
// Allocation instrumentation (single-threaded benches; plain counters).

namespace {
std::uint64_t g_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
// The replacement operator new above allocates with malloc, so free() is
// the matching deallocator; GCC's -Wmismatched-new-delete can't see that
// pairing across the replaced operators.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace hcube::bench {
namespace {

HCUBE_METRIC(kMetricDelivered, "tp.delivered");

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct PathResult {
  const char* name;
  std::uint64_t delivered = 0;
  double wall_s = 0.0;
  double allocs_per_msg = 0.0;
  double msgs_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(delivered) / wall_s : 0.0;
  }
};

std::array<NodeId, 2> make_ids(const IdParams& params) {
  UniqueIdGenerator gen(params, 42);
  return {gen.next(), gen.next()};
}

// The event queue as it was before the pooled refactor (verbatim from the
// seed implementation): every event owns a std::function, so every schedule
// allocates a closure.
class LegacyEventQueue {
 public:
  SimTime now() const { return now_; }

  void schedule_after(SimTime delay, std::function<void()> fn) {
    heap_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  std::uint64_t run() {
    std::uint64_t n = 0;
    while (!heap_.empty()) {
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      now_ = ev.time;
      ev.fn();
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

// The pre-seam send path end to end: resolve both endpoints in the NodeId
// registry (two hash lookups, as the old Overlay::send_message did on every
// send), then park the Message in a heap-allocated closure on the legacy
// queue.
PathResult run_legacy(std::uint64_t warmup, std::uint64_t measured) {
  const IdParams params{16, 8};
  const auto ids = make_ids(params);
  LegacyEventQueue queue;
  SyntheticLatency latency(2, 5.0, 120.0, /*seed=*/1);
  std::unordered_map<NodeId, HostId, NodeIdHash> registry;
  registry.emplace(ids[0], 0);
  registry.emplace(ids[1], 1);
  const std::uint64_t total = warmup + measured;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t allocs_before = 0;
  Clock::time_point t0;
  std::function<void(HostId, const Message&)> handlers[2];
  auto send = [&](const NodeId& from_id, const NodeId& to_id,
                  MessageBody body) {
    const HostId from = registry.find(from_id)->second;
    const HostId to = registry.find(to_id)->second;
    ++sent;
    queue.schedule_after(latency.latency_ms(from, to),
                         [&handlers, from, to,
                          m = Message{from_id, std::move(body)}] {
                           handlers[to](from, m);
                         });
  };
  auto handler_for = [&](HostId self) {
    return [&, self](HostId, const Message& msg) {
      ++delivered;
      // The legacy queue has no event-capped run; end the warmup in-band.
      if (delivered == warmup) {
        allocs_before = g_allocs;
        t0 = Clock::now();
      }
      if (sent < total) send(ids[self], msg.sender, PingMsg{});
    };
  };
  handlers[0] = handler_for(0);
  handlers[1] = handler_for(1);

  // With no warmup the in-band end-of-warmup check never fires.
  allocs_before = g_allocs;
  t0 = Clock::now();
  send(ids[0], ids[1], PingMsg{});
  queue.run();
  PathResult r{"legacy (closure/event)"};
  r.wall_s = seconds_since(t0);
  r.delivered = delivered;
  r.allocs_per_msg = measured > 0
                         ? static_cast<double>(g_allocs - allocs_before) /
                               static_cast<double>(measured)
                         : 0.0;
  return r;
}

PathResult run_pooled(const char* name, Transport& transport,
                      std::uint64_t warmup, std::uint64_t measured,
                      obs::MetricsRegistry& reg) {
  const IdParams params{16, 8};
  const auto ids = make_ids(params);
  EventQueue& queue = transport.queue();
  const std::uint64_t total = warmup + measured;
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  // Interned before the measured window opens; the per-delivery add() below
  // is the metric update the allocs/msg figure has to stay at zero with.
  const obs::MetricsRegistry::Id delivered_id = reg.counter(kMetricDelivered);
  for (HostId self : {HostId{0}, HostId{1}}) {
    transport.add_endpoint([&, self](HostId from, const Message&) {
      ++delivered;
      reg.add(delivered_id);
      if (sent < total) {
        ++sent;
        transport.send(self, from, Message{ids[self], PingMsg{}});
      }
    });
  }

  ++sent;
  transport.send(0, 1, Message{ids[0], PingMsg{}});
  queue.run(warmup);
  const std::uint64_t allocs_before = g_allocs;
  const auto t0 = Clock::now();
  queue.run();
  PathResult r{name};
  r.wall_s = seconds_since(t0);
  r.delivered = delivered;
  r.allocs_per_msg = measured > 0
                         ? static_cast<double>(g_allocs - allocs_before) /
                               static_cast<double>(measured)
                         : 0.0;
  return r;
}

void print_path(const PathResult& r) {
  std::printf("  %-24s %12.0f msgs/sec   %8.4f allocs/msg   (%llu delivered, %.3fs)\n",
              r.name, r.msgs_per_sec(), r.allocs_per_msg,
              static_cast<unsigned long long>(r.delivered), r.wall_s);
}

// Protocol-level comparison: the same join wave over each transport. The
// sim wave also snapshots the full overlay registry (per-message-type send
// counters, membership gauges, join histograms) into the bench report.
void run_wave(const char* name, Transport& transport, std::size_t n,
              std::size_t m, std::uint64_t seed,
              obs::MetricsRegistry* collect_into) {
  const IdParams params{16, 8};
  ProtocolOptions options;
  Overlay overlay(params, options, transport);
  Rng rng(seed);
  UniqueIdGenerator gen(params, seed ^ 0x5eed);
  std::vector<NodeId> v, w;
  for (std::size_t i = 0; i < n; ++i) v.push_back(gen.next());
  for (std::size_t i = 0; i < m; ++i) w.push_back(gen.next());
  build_consistent_network(overlay, v);

  const std::uint64_t events_before = transport.queue().events_processed();
  const auto t0 = Clock::now();
  join_concurrently(overlay, w, v, rng, /*window_ms=*/0.0);
  const double wall = seconds_since(t0);
  const std::uint64_t events =
      transport.queue().events_processed() - events_before;
  const bool consistent = check_consistency(view_of(overlay)).consistent();
  if (collect_into) {
    obs::collect(overlay, *collect_into);
    collect_into->set_named(std::string("wave.") + name + ".msgs_per_sec",
                            wall > 0 ? overlay.totals().messages / wall : 0.0);
  }
  std::printf(
      "  %-10s n=%zu m=%zu: %llu msgs in %.3fs (%.0f msgs/sec, %llu events)%s\n",
      name, n, m, static_cast<unsigned long long>(overlay.totals().messages),
      wall, wall > 0 ? overlay.totals().messages / wall : 0.0,
      static_cast<unsigned long long>(events),
      consistent && overlay.all_in_system() ? "" : "  [INCONSISTENT]");
}

int main_impl(int argc, char** argv) {
  // Defaults sized so the measured phase runs long enough (~0.4s+) that
  // scheduler jitter does not swamp the legacy-vs-pooled comparison;
  // --quick trades precision for CI turnaround.
  const bool quick = flag_present(argc, argv, "--quick");
  const std::uint64_t measured = flag_u64(argc, argv, "--messages",
                                          quick ? 1'000'000 : 10'000'000);
  const std::uint64_t warmup =
      flag_u64(argc, argv, "--warmup", quick ? 100'000 : 200'000);
  const std::size_t wave_n = static_cast<std::size_t>(
      flag_u64(argc, argv, "--wave-n", quick ? 256 : 512));
  const std::size_t wave_m = static_cast<std::size_t>(
      flag_u64(argc, argv, "--wave-m", quick ? 64 : 128));

  obs::BenchReport report("throughput");
  report.param("quick", static_cast<std::uint64_t>(quick ? 1 : 0));
  report.param("messages", measured);
  report.param("warmup", warmup);
  report.param("wave_n", static_cast<std::uint64_t>(wave_n));
  report.param("wave_m", static_cast<std::uint64_t>(wave_m));
  auto& reg = report.metrics();
  auto record_path = [&reg](const char* key, const PathResult& r) {
    reg.set_named(std::string("tp.") + key + ".msgs_per_sec",
                  r.msgs_per_sec());
    reg.set_named(std::string("tp.") + key + ".allocs_per_msg",
                  r.allocs_per_msg);
  };

  std::printf("raw ping-pong (%llu warmup + %llu measured messages):\n",
              static_cast<unsigned long long>(warmup),
              static_cast<unsigned long long>(measured));
  const PathResult legacy = run_legacy(warmup, measured);
  print_path(legacy);
  record_path("legacy", legacy);

  PathResult sim{};
  {
    EventQueue queue;
    SyntheticLatency latency(2, 5.0, 120.0, /*seed=*/1);
    SimTransport transport(queue, latency);
    sim = run_pooled("sim (pooled)", transport, warmup, measured, reg);
    print_path(sim);
    record_path("sim", sim);
  }
  PathResult loopback{};
  {
    EventQueue queue;
    LoopbackTransport transport(queue, /*max_endpoints=*/2);
    loopback =
        run_pooled("loopback (pooled)", transport, warmup, measured, reg);
    print_path(loopback);
    record_path("loopback", loopback);
  }
  PathResult reliable{};
  {
    EventQueue queue;
    LoopbackTransport inner(queue, /*max_endpoints=*/2);
    ReliableTransport transport(inner);
    reliable =
        run_pooled("reliable (loopback)", transport, warmup, measured, reg);
    print_path(reliable);
    record_path("reliable", reliable);
    if (transport.rstats().retransmits != 0 ||
        transport.rstats().dup_suppressed != 0) {
      std::printf("  [UNEXPECTED] clean loopback saw %llu retransmits, "
                  "%llu dup-suppressed\n",
                  static_cast<unsigned long long>(
                      transport.rstats().retransmits),
                  static_cast<unsigned long long>(
                      transport.rstats().dup_suppressed));
    }
  }
  std::printf("  loopback/legacy speedup: %.2fx\n",
              legacy.msgs_per_sec() > 0
                  ? loopback.msgs_per_sec() / legacy.msgs_per_sec()
                  : 0.0);
  reg.set_named("tp.loopback_legacy_speedup",
                legacy.msgs_per_sec() > 0
                    ? loopback.msgs_per_sec() / legacy.msgs_per_sec()
                    : 0.0);

  std::printf("\nprotocol join wave:\n");
  {
    EventQueue queue;
    SyntheticLatency latency(static_cast<std::uint32_t>(wave_n + wave_m), 5.0,
                             120.0, /*seed=*/7);
    SimTransport transport(queue, latency);
    run_wave("sim", transport, wave_n, wave_m, /*seed=*/7, &reg);
  }
  {
    EventQueue queue;
    LoopbackTransport transport(
        queue, static_cast<std::uint32_t>(wave_n + wave_m));
    run_wave("loopback", transport, wave_n, wave_m, /*seed=*/7, nullptr);
  }
  write_report(report);
  return 0;
}

}  // namespace
}  // namespace hcube::bench

int main(int argc, char** argv) {
  return hcube::bench::main_impl(argc, argv);
}
