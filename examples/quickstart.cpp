// Quickstart: the smallest end-to-end tour of the library.
//
//   1. Create a simulated network world (event queue + latency model).
//   2. Bootstrap a consistent overlay of 24 nodes through the join protocol
//      itself (Section 6.1 of the paper: one seed, everyone else joins).
//   3. Join one more node while we watch its message footprint.
//   4. Route messages by suffix matching and audit consistency.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/builder.h"
#include "core/consistency.h"
#include "core/routing.h"
#include "topology/latency.h"

using namespace hcube;

int main() {
  // b = 4, d = 5: the ID shape of the paper's running example (Figure 1).
  const IdParams params{4, 5};

  EventQueue queue;
  SyntheticLatency latency(/*num_hosts=*/32, 5.0, 120.0, /*seed=*/7);
  Overlay overlay(params, ProtocolOptions{}, queue, latency);

  // --- 1+2: grow a network from a single seed via the join protocol ---
  UniqueIdGenerator gen(params, 2003);
  std::vector<NodeId> ids;
  for (int i = 0; i < 24; ++i) ids.push_back(gen.next());
  Rng rng(1);
  initialize_network(overlay, ids, rng, /*concurrent=*/false);
  std::printf("bootstrapped %zu nodes; all in system: %s\n", overlay.size(),
              overlay.all_in_system() ? "yes" : "no");

  // --- 3: one more node joins; look at what it cost ---
  const NodeId newcomer = gen.next();
  std::printf("\nnode %s joins via gateway %s ...\n",
              newcomer.to_string(params).c_str(),
              ids[0].to_string(params).c_str());
  overlay.schedule_join(newcomer, ids[0], overlay.now());
  overlay.run_to_quiescence();

  const JoinStats& stats = overlay.at(newcomer).join_stats();
  std::printf("  joined in %.1f simulated ms\n", stats.t_end - stats.t_begin);
  std::printf("  notification level: %u\n", stats.noti_level);
  for (std::size_t t = 0; t < kNumMessageTypes; ++t) {
    if (stats.sent[t] == 0) continue;
    std::printf("  sent %-16s x%llu\n",
                type_name(static_cast<MessageType>(t)),
                static_cast<unsigned long long>(stats.sent[t]));
  }

  // Its neighbor table, in the style of the paper's Figure 1.
  std::printf("\n%s", overlay.at(newcomer).table().to_string().c_str());

  // --- 4: suffix routing ---
  const NetworkView net = view_of(overlay);
  const auto hop_path = route(net, ids[3], newcomer);
  std::printf("\nroute %s -> %s (%zu hops):",
              ids[3].to_string(params).c_str(),
              newcomer.to_string(params).c_str(), hop_path.hops());
  for (const NodeId& hop : hop_path.path)
    std::printf(" %s", hop.to_string(params).c_str());
  std::printf("\n");

  // --- audit: Definition 3.8 over every table ---
  const auto report = check_consistency(net);
  std::printf("\nconsistency audit: %llu entries checked, %s\n",
              static_cast<unsigned long long>(report.entries_checked),
              report.consistent() ? "CONSISTENT" : "INCONSISTENT");
  return report.consistent() ? 0 : 1;
}
