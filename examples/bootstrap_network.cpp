// Network initialization (Section 6.1) at scale, over a realistic underlay.
//
// Starts from a single seed node and grows the overlay to 800 members using
// only the join protocol, with end hosts attached to a generated
// transit-stub router topology (the paper's GT-ITM setup, built from
// scratch in src/topology). Half the nodes join in sequential batches, the
// rest in one concurrent burst — then the whole network is audited against
// Definition 3.8 and all-pairs-sampled reachability (Lemma 3.1).
//
// Build & run:  ./build/examples/bootstrap_network
#include <cstdio>

#include "core/builder.h"
#include "core/consistency.h"
#include "core/routing.h"
#include "topology/latency.h"
#include "util/stats.h"

using namespace hcube;

int main() {
  const IdParams params{16, 8};
  constexpr std::uint32_t kTotal = 800;

  // A transit-stub underlay: 4 transit domains x 8 transit routers, 4 stub
  // domains of 16 routers each per transit router = 2080 routers.
  Rng topo_rng(2080);
  TransitStubParams ts;
  auto latency = make_transit_stub_latency(ts, kTotal, topo_rng);
  std::printf("underlay: %u-router transit-stub topology, %u end hosts\n",
              ts.total_routers(), kTotal);

  EventQueue queue;
  Overlay overlay(params, ProtocolOptions{}, queue, *latency);

  UniqueIdGenerator gen(params, 60);
  std::vector<NodeId> ids;
  for (std::uint32_t i = 0; i < kTotal; ++i) ids.push_back(gen.next());

  // Seed.
  overlay.add_node(ids[0]).become_seed();
  std::vector<NodeId> members{ids[0]};
  Rng rng(61);

  // Phase 1: sequential growth to 400 members.
  std::vector<NodeId> phase1(ids.begin() + 1, ids.begin() + 400);
  join_sequentially(overlay, phase1, members, rng);
  members.insert(members.end(), phase1.begin(), phase1.end());
  std::printf("phase 1: %zu members after sequential joins (sim time %.0f"
              " ms)\n",
              overlay.size(), overlay.now());

  // Phase 2: 400 more join in one concurrent burst.
  const std::vector<NodeId> phase2(ids.begin() + 400, ids.end());
  const double burst_start = overlay.now();
  join_concurrently(overlay, phase2, members, rng, /*window_ms=*/0.0);
  std::printf("phase 2: +%zu concurrent joiners, burst settled in %.0f ms"
              " of simulated time\n",
              phase2.size(), overlay.now() - burst_start);

  // Join-cost digest for the burst.
  StreamingStats noti, duration;
  for (const NodeId& x : phase2) {
    const JoinStats& s = overlay.at(x).join_stats();
    noti.add(static_cast<double>(s.sent_of(MessageType::kJoinNoti)));
    duration.add(s.t_end - s.t_begin);
  }
  std::printf("burst join cost: JoinNotiMsg/joiner mean %.2f max %.0f;"
              " join latency mean %.0f ms max %.0f ms\n",
              noti.mean(), noti.max(), duration.mean(), duration.max());

  // Full audit.
  const auto report = check_consistency(view_of(overlay));
  Rng sample(1);
  const auto unreachable =
      check_reachability_sample(view_of(overlay), 20000, sample);
  std::printf("audit: %llu entries checked -> %s; 20000 sampled routes ->"
              " %llu failures\n",
              static_cast<unsigned long long>(report.entries_checked),
              report.consistent() ? "CONSISTENT" : "INCONSISTENT",
              static_cast<unsigned long long>(unreachable));
  std::printf("all %zu nodes in system: %s\n", overlay.size(),
              overlay.all_in_system() ? "yes" : "no");
  return report.consistent() && unreachable == 0 ? 0 : 1;
}
