// Object location — the application the paper's introduction motivates.
//
// A file-sharing community of 200 peers publishes objects addressed by
// name. Names hash (SHA-1) to IDs in the node ID space; each object lives
// at its root node, found by surrogate routing over consistent neighbor
// tables. The example demonstrates the four properties of Section 1:
//   P1 deterministic location (every origin finds every published object),
//   P3 load balance (roots spread across nodes),
//   P4 dynamic membership (publishing keeps working across a join wave),
// and shows routing locality data (P2 is about proximity, which the paper —
// and therefore this reproduction — leaves to the table-optimization
// problem; we print hop counts as the overlay-level part of the story).
//
// Build & run:  ./build/examples/object_location
#include <cstdio>
#include <string>

#include "core/builder.h"
#include "core/consistency.h"
#include "dht/object_store.h"
#include "topology/latency.h"
#include "util/stats.h"

using namespace hcube;

int main() {
  const IdParams params{16, 8};
  EventQueue queue;
  SyntheticLatency latency(300, 5.0, 120.0, 5);
  Overlay overlay(params, ProtocolOptions{}, queue, latency);

  UniqueIdGenerator gen(params, 404);
  std::vector<NodeId> peers;
  for (int i = 0; i < 200; ++i) peers.push_back(gen.next());
  build_consistent_network(overlay, peers);

  ObjectStore store(view_of(overlay));

  // --- publish a music collection from random peers ---
  Rng rng(8);
  constexpr int kObjects = 500;
  StreamingStats publish_hops;
  for (int i = 0; i < kObjects; ++i) {
    const std::string name = "track-" + std::to_string(i) + ".mp3";
    const NodeId& origin = peers[rng.next_below(peers.size())];
    const auto result = store.publish(origin, name, "blob#" + name);
    if (!result.success) {
      std::printf("publish failed for %s\n", name.c_str());
      return 1;
    }
    publish_hops.add(static_cast<double>(result.hops));
  }
  std::printf("published %d objects; publish hops: mean %.2f, max %.0f"
              " (d = %u bound)\n",
              kObjects, publish_hops.mean(), publish_hops.max(),
              params.num_digits);

  // --- P1: every peer can locate every sampled object ---
  int located = 0, probes = 0;
  for (int i = 0; i < kObjects; i += 25) {
    const std::string name = "track-" + std::to_string(i) + ".mp3";
    for (std::size_t p = 0; p < peers.size(); p += 17) {
      ++probes;
      std::string value;
      if (store.lookup(peers[p], name, &value).success &&
          value == "blob#" + name)
        ++located;
    }
  }
  std::printf("P1 deterministic location: %d/%d lookups found the object\n",
              located, probes);

  // --- P3: root load distribution ---
  std::size_t peak = 0, holders = 0;
  for (const NodeId& p : peers) {
    peak = std::max(peak, store.load_of(p));
    if (store.load_of(p) > 0) ++holders;
  }
  std::printf("P3 load balance: %zu/%zu peers hold objects; busiest holds"
              " %zu of %d\n",
              holders, peers.size(), peak, kObjects);

  // --- P4: membership grows; the store keeps working ---
  std::vector<NodeId> newcomers;
  for (int i = 0; i < 60; ++i) newcomers.push_back(gen.next());
  join_concurrently(overlay, newcomers, peers, rng);
  if (!overlay.all_in_system() ||
      !check_consistency(view_of(overlay)).consistent()) {
    std::printf("join wave broke the network!\n");
    return 1;
  }
  // Rebuild the store view over the grown network; republish (in a real
  // deployment objects whose root moved would be handed off — root
  // migration is object-layer machinery outside the paper's scope).
  ObjectStore store2(view_of(overlay));
  const auto pub = store2.publish(newcomers[0], "post-join.mp3", "fresh");
  std::string got;
  const auto find = store2.lookup(peers[0], "post-join.mp3", &got);
  std::printf("P4 dynamic membership: 60 peers joined concurrently;"
              " publish-from-newcomer then lookup-from-old-peer: %s\n",
              find.success && got == "fresh" ? "OK" : "FAILED");
  std::printf("   (both resolve the same root: %s)\n",
              pub.root == find.root ? "yes" : "no");
  return find.success ? 0 : 1;
}
