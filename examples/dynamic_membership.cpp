// Dynamic membership, end to end — the full lifecycle the paper's title
// promises and the extensions this library adds on its framework:
//
//   1. bootstrap a network through the join protocol (paper, §6.1)
//   2. a concurrent join wave (paper, Theorem 1)
//   3. graceful leaves (extension: leave protocol)
//   4. fail-stop crashes + pull/push repair (extension: recovery)
//   5. an object store that follows the membership via root handoff
//
// After every phase the network is audited against Definition 3.8 over the
// live membership.
//
// Build & run:  ./build/examples/dynamic_membership
#include <cstdio>

#include "core/builder.h"
#include "core/consistency.h"
#include "core/routing.h"
#include "dht/object_store.h"
#include "topology/latency.h"

using namespace hcube;

namespace {

bool audit_phase(const char* phase, Overlay& overlay) {
  const auto report = check_consistency(view_of(overlay));
  std::printf("%-38s live=%3zu  %s\n", phase, overlay.live_size(),
              report.consistent() ? "CONSISTENT" : "INCONSISTENT!");
  return report.consistent();
}

}  // namespace

int main() {
  const IdParams params{16, 6};
  EventQueue queue;
  SyntheticLatency latency(300, 5.0, 120.0, 1234);
  Overlay overlay(params, ProtocolOptions{}, queue, latency);
  UniqueIdGenerator gen(params, 42);
  Rng rng(7);
  bool ok = true;

  // 1. bootstrap: 80 nodes, all via the join protocol.
  std::vector<NodeId> members;
  for (int i = 0; i < 80; ++i) members.push_back(gen.next());
  initialize_network(overlay, members, rng);
  ok &= audit_phase("1. bootstrapped via joins", overlay);

  // Publish a library of objects.
  ObjectStore store(view_of(overlay));
  for (int i = 0; i < 300; ++i)
    store.publish(members[static_cast<std::size_t>(i) % members.size()],
                  "doc/" + std::to_string(i), "contents-" + std::to_string(i));

  // 2. concurrent join wave.
  std::vector<NodeId> joiners;
  for (int i = 0; i < 60; ++i) joiners.push_back(gen.next());
  join_concurrently(overlay, joiners, members, rng);
  members.insert(members.end(), joiners.begin(), joiners.end());
  ok &= audit_phase("2. +60 concurrent joins", overlay);
  std::printf("   object handoff after joins: %zu objects migrated\n",
              store.rebalance(view_of(overlay)));

  // 3. graceful leaves.
  for (int i = 0; i < 25; ++i) {
    const std::size_t victim = rng.next_below(members.size());
    leave_and_drain(overlay, members[victim]);
    members.erase(members.begin() + static_cast<long>(victim));
  }
  ok &= audit_phase("3. -25 graceful leaves", overlay);
  std::printf("   object handoff after leaves: %zu objects migrated\n",
              store.rebalance(view_of(overlay)));

  // 4. crashes + recovery.
  for (int i = 0; i < 10; ++i) {
    const std::size_t victim = rng.next_below(members.size());
    overlay.crash(members[victim]);
    members.erase(members.begin() + static_cast<long>(victim));
  }
  const auto queries = overlay.repair_all(/*ping_timeout_ms=*/500.0,
                                          /*rounds=*/3);
  ok &= audit_phase("4. -10 crashes, repaired", overlay);
  std::printf("   recovery issued %llu repair queries\n",
              static_cast<unsigned long long>(queries));
  std::printf("   object handoff after recovery: %zu objects migrated\n",
              store.rebalance(view_of(overlay)));

  // 5. final service check: every object findable from every 7th member.
  int found = 0, probes = 0;
  for (int i = 0; i < 300; i += 23) {
    for (std::size_t p = 0; p < members.size(); p += 7) {
      ++probes;
      std::string value;
      if (store.lookup(members[p], "doc/" + std::to_string(i), &value)
              .success &&
          value == "contents-" + std::to_string(i))
        ++found;
    }
  }
  std::printf("5. object service after all churn: %d/%d lookups succeeded\n",
              found, probes);
  ok &= (found == probes);

  std::printf("\n%s\n", ok ? "lifecycle complete — every phase consistent"
                           : "LIFECYCLE FAILED");
  return ok ? 0 : 1;
}
