// Concurrent joins and C-set trees — the heart of the paper.
//
// Part 1 replays the worked example of Section 3.3 (b = 8, d = 5):
//   V = {72430, 10353, 62332, 13141, 31701},
//   W = {10261, 47051, 00261} joining concurrently and *dependently*
//   (10261 and 00261 both believe they might be the only *261 node).
// It prints the C-set tree template C(V, W) (the paper's Figure 2(b)), the
// realization cset(V, W) after the protocol quiesces (one concrete instance
// of Figure 2(c)), and verifies conditions (1)-(3) of Section 3.3.
//
// Part 2 scales up: 150 nodes join a 150-node network at the same instant.
//
// Build & run:  ./build/examples/concurrent_joins
#include <cstdio>

#include "core/builder.h"
#include "core/consistency.h"
#include "core/cset_tree.h"
#include "core/routing.h"
#include "topology/latency.h"

using namespace hcube;

int main() {
  const IdParams params{8, 5};
  EventQueue queue;
  SyntheticLatency latency(512, 5.0, 120.0, 11);
  Overlay overlay(params, ProtocolOptions{}, queue, latency);

  std::vector<NodeId> v, w;
  for (const char* s : {"72430", "10353", "62332", "13141", "31701"})
    v.push_back(*NodeId::from_string(s, params));
  for (const char* s : {"10261", "47051", "00261"})
    w.push_back(*NodeId::from_string(s, params));

  build_consistent_network(overlay, v);

  SuffixTrie v_trie(params);
  for (const NodeId& id : v) v_trie.insert(id);

  std::printf("=== Part 1: the paper's Section 3.3 example ===\n");
  for (const NodeId& x : w) {
    const Suffix omega = notify_suffix(v_trie, x);
    std::printf("joiner %s: notification set V_%s (%zu nodes)\n",
                x.to_string(params).c_str(),
                suffix_to_string(omega, params).c_str(),
                v_trie.count_with_suffix(omega));
  }

  const CSetTree templ = CSetTree::make_template(params, Suffix{1}, w);
  std::printf("\nC-set tree template C(V, W) — Figure 2(b):\n%s",
              templ.to_string(params).c_str());

  // All three joins start at the same instant: dependent, concurrent.
  Rng rng(3);
  join_concurrently(overlay, w, v, rng, /*window_ms=*/0.0);
  std::printf("\nall joined: %s\n",
              overlay.all_in_system() ? "yes" : "NO");

  const CSetTree realized =
      CSetTree::realize(view_of(overlay), v_trie, Suffix{1}, w);
  std::printf("\nrealized cset(V, W) — an instance of Figure 2(c):\n%s",
              realized.to_string(params).c_str());

  const auto violations =
      check_cset_conditions(view_of(overlay), v_trie, Suffix{1}, w);
  std::printf("\nconditions (1)-(3) of Section 3.3: %s\n",
              violations.empty() ? "all hold" : violations.front().c_str());

  const auto report = check_consistency(view_of(overlay));
  std::printf("network consistent: %s\n\n",
              report.consistent() ? "yes" : "NO");

  // === Part 2: a join storm ===
  std::printf("=== Part 2: 150 nodes join a 150-node network at t=0 ===\n");
  EventQueue queue2;
  SyntheticLatency latency2(512, 5.0, 120.0, 13);
  Overlay storm(params, ProtocolOptions{}, queue2, latency2);
  UniqueIdGenerator gen(params, 99);
  std::vector<NodeId> v2, w2;
  for (int i = 0; i < 150; ++i) v2.push_back(gen.next());
  for (int i = 0; i < 150; ++i) w2.push_back(gen.next());
  build_consistent_network(storm, v2);
  join_concurrently(storm, w2, v2, rng, /*window_ms=*/0.0);

  SuffixTrie v2_trie(params);
  for (const NodeId& id : v2) v2_trie.insert(id);
  const auto dependent_groups = group_dependent(v2_trie, w2);
  std::printf("dependent-join groups (Lemma 5.5 partition): %zu\n",
              dependent_groups.size());

  std::size_t checked = 0, ok = 0;
  for (const auto& [omega, members] : group_by_notify_set(v2_trie, w2)) {
    ++checked;
    if (check_cset_conditions(view_of(storm), v2_trie, omega, members)
            .empty())
      ++ok;
  }
  std::printf("C-set trees verified: %zu/%zu satisfy conditions (1)-(3)\n",
              ok, checked);

  const auto report2 = check_consistency(view_of(storm));
  std::printf("all 300 nodes in system: %s; network consistent: %s\n",
              storm.all_in_system() ? "yes" : "NO",
              report2.consistent() ? "yes" : "NO");
  return report.consistent() && report2.consistent() && ok == checked ? 0 : 1;
}
