// hcube_sim — command-line driver for the hcube library.
//
// Subcommands:
//   wave    run a join wave into a consistent network and report costs
//   bound   evaluate the analytic model (Theorems 4/5) for given n, m, b, d
//   churn   alternate join waves and graceful leaves; audit each round
//   trace   run a small scenario and print every protocol message
//   table   print one node's neighbor table after a scenario
//
// Run `hcube_sim <subcommand> --help` equivalent: any unknown flag prints
// usage. All randomness is seeded; identical invocations produce identical
// output.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>

#include "analysis/join_cost.h"
#include "core/builder.h"
#include "core/consistency.h"
#include "core/optimize.h"
#include "core/routing.h"
#include "topology/latency.h"
#include "util/stats.h"

namespace {

using namespace hcube;

struct Args {
  std::map<std::string, std::string> kv;

  std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : std::strtoull(it->second.c_str(),
                                                     nullptr, 10);
  }
  std::string str(const std::string& key, const std::string& fallback) const {
    auto it = kv.find(key);
    return it == kv.end() ? fallback : it->second;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: hcube_sim <wave|bound|churn|trace|table> [--key value ...]\n"
               "\n"
               "common flags: --b <base=16> --d <digits=8> --seed <s=1>\n"
               "  wave:  --n <members=1000> --m <joiners=200> --backups <K=0>\n"
               "         --policy <full|partial|bitvec> --topology <synthetic|transit-stub>\n"
               "         --optimize <0|1>\n"
               "  bound: --n <members> --m <joiners>\n"
               "  churn: --n <members=500> --batch <50> --rounds <5>\n"
               "  trace: --n <members=4> --m <joiners=2>\n"
               "  table: --n <members=8> --node <index=0>\n");
  return 2;
}

IdParams params_of(const Args& a) {
  IdParams p{static_cast<std::uint32_t>(a.u64("b", 16)),
             static_cast<std::uint32_t>(a.u64("d", 8))};
  p.validate();
  return p;
}

std::unique_ptr<LatencyModel> latency_of(const Args& a, std::uint32_t hosts,
                                         Rng& rng) {
  if (a.str("topology", "synthetic") == "transit-stub") {
    return make_transit_stub_latency(TransitStubParams{}, hosts, rng);
  }
  return std::make_unique<SyntheticLatency>(hosts, 5.0, 120.0, a.u64("seed", 1));
}

SnapshotPolicy policy_of(const Args& a) {
  const std::string p = a.str("policy", "full");
  if (p == "partial") return SnapshotPolicy::kPartialLevels;
  if (p == "bitvec") return SnapshotPolicy::kBitVector;
  return SnapshotPolicy::kFullTable;
}

std::vector<NodeId> fresh_ids(UniqueIdGenerator& gen, std::size_t n) {
  std::vector<NodeId> ids;
  ids.reserve(n);
  for (std::size_t i = 0; i < n; ++i) ids.push_back(gen.next());
  return ids;
}

int cmd_wave(const Args& a) {
  const IdParams params = params_of(a);
  const auto n = a.u64("n", 1000), m = a.u64("m", 200), seed = a.u64("seed", 1);
  Rng rng(seed);
  auto latency = latency_of(a, static_cast<std::uint32_t>(n + m), rng);
  EventQueue queue;
  ProtocolOptions options;
  options.snapshot_policy = policy_of(a);
  options.backups_per_entry =
      static_cast<std::uint32_t>(a.u64("backups", 0));
  Overlay overlay(params, options, queue, *latency);
  UniqueIdGenerator gen(params, seed);
  const auto v = fresh_ids(gen, n);
  const auto w = fresh_ids(gen, m);
  build_consistent_network(overlay, v, options.backups_per_entry);
  join_concurrently(overlay, w, v, rng);

  EmpiricalDistribution noti, copy_wait;
  StreamingStats duration;
  for (const NodeId& x : w) {
    const JoinStats& s = overlay.at(x).join_stats();
    noti.add(static_cast<std::int64_t>(s.sent_of(MessageType::kJoinNoti)));
    copy_wait.add(static_cast<std::int64_t>(s.copy_plus_wait()));
    duration.add(s.t_end - s.t_begin);
  }
  if (a.u64("optimize", 0) != 0) {
    const auto opt = optimize_tables(overlay, *latency);
    std::printf("optimizer rebound %llu of %llu entries\n",
                static_cast<unsigned long long>(opt.entries_rebound),
                static_cast<unsigned long long>(opt.entries_examined));
  }
  const auto report = check_consistency(view_of(overlay));

  std::printf("join wave: n=%llu m=%llu b=%u d=%u policy=%s seed=%llu\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m), params.base,
              params.num_digits, to_string(options.snapshot_policy),
              static_cast<unsigned long long>(seed));
  std::printf("  all in system:        %s\n",
              overlay.all_in_system() ? "yes" : "NO");
  std::printf("  consistent:           %s\n",
              report.consistent() ? "yes" : "NO");
  std::printf("  JoinNotiMsg/joiner:   mean %.3f  p99 %lld  max %lld"
              "  (Theorem 5 bound %.3f)\n",
              noti.mean(), static_cast<long long>(noti.quantile(0.99)),
              static_cast<long long>(noti.max()),
              expected_join_noti_concurrent_bound(params, n, m));
  std::printf("  CpRst+JoinWait/joiner: mean %.3f  max %lld  (bound %llu)\n",
              copy_wait.mean(), static_cast<long long>(copy_wait.max()),
              static_cast<unsigned long long>(theorem3_bound(params)));
  std::printf("  join latency (sim ms): mean %.1f  max %.1f\n",
              duration.mean(), duration.max());
  std::printf("  total messages: %llu (%llu bytes)\n",
              static_cast<unsigned long long>(overlay.totals().messages),
              static_cast<unsigned long long>(overlay.totals().bytes));
  for (std::size_t t = 0; t < kNumMessageTypes; ++t) {
    if (overlay.totals().sent[t] == 0) continue;
    std::printf("    %-16s %llu\n", type_name(static_cast<MessageType>(t)),
                static_cast<unsigned long long>(overlay.totals().sent[t]));
  }
  return overlay.all_in_system() && report.consistent() ? 0 : 1;
}

int cmd_bound(const Args& a) {
  const IdParams params = params_of(a);
  const auto n = a.u64("n", 1000), m = a.u64("m", 0);
  std::printf("P_i(n): notification-level distribution for n=%llu, b=%u, d=%u\n",
              static_cast<unsigned long long>(n), params.base,
              params.num_digits);
  const auto p = notification_level_distribution(params, n);
  for (std::uint32_t i = 0; i < params.num_digits; ++i)
    if (p[i] > 1e-12) std::printf("  P_%u = %.6f\n", i, p[i]);
  std::printf("Theorem 4  E[J] single join:        %.3f\n",
              expected_join_noti_single(params, n));
  if (m > 0)
    std::printf("Theorem 5  E[J] bound, m=%llu:      %.3f\n",
                static_cast<unsigned long long>(m),
                expected_join_noti_concurrent_bound(params, n, m));
  std::printf("Theorem 3  CpRst+JoinWait bound:     %llu\n",
              static_cast<unsigned long long>(theorem3_bound(params)));
  return 0;
}

int cmd_churn(const Args& a) {
  const IdParams params = params_of(a);
  const auto n = a.u64("n", 500), batch = a.u64("batch", 50),
             rounds = a.u64("rounds", 5), seed = a.u64("seed", 1);
  Rng rng(seed);
  auto latency = latency_of(
      a, static_cast<std::uint32_t>(n + batch * rounds + 8), rng);
  EventQueue queue;
  Overlay overlay(params, {}, queue, *latency);
  UniqueIdGenerator gen(params, seed);
  auto live = fresh_ids(gen, n);
  build_consistent_network(overlay, live);

  for (std::uint64_t round = 0; round < rounds; ++round) {
    const auto joiners = fresh_ids(gen, batch);
    join_concurrently(overlay, joiners, live, rng);
    live.insert(live.end(), joiners.begin(), joiners.end());
    for (std::uint64_t i = 0; i < batch; ++i) {
      const std::size_t victim = rng.next_below(live.size());
      overlay.at(live[victim]).start_leave();
      overlay.run_to_quiescence();
      live.erase(live.begin() + static_cast<long>(victim));
    }
    const bool ok = overlay.all_in_system() &&
                    check_consistency(view_of(overlay)).consistent();
    std::printf("round %llu: live=%zu consistent=%s\n",
                static_cast<unsigned long long>(round), live.size(),
                ok ? "yes" : "NO");
    if (!ok) return 1;
  }
  return 0;
}

int cmd_trace(const Args& a) {
  const IdParams params = params_of(a);
  const auto n = a.u64("n", 4), m = a.u64("m", 2), seed = a.u64("seed", 1);
  Rng rng(seed);
  auto latency = latency_of(a, static_cast<std::uint32_t>(n + m), rng);
  EventQueue queue;
  Overlay overlay(params, {}, queue, *latency);
  UniqueIdGenerator gen(params, seed);
  const auto v = fresh_ids(gen, n);
  const auto w = fresh_ids(gen, m);

  overlay.on_message = [&](const NodeId& from, const NodeId& to,
                           const MessageBody& body) {
    std::printf("%10.2f  %-12s  %s -> %s\n", queue.now(),
                type_name(type_of(body)), from.to_string(params).c_str(),
                to.to_string(params).c_str());
  };
  build_consistent_network(overlay, v);
  std::printf("# %llu-node network built; joining %llu nodes concurrently\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(m));
  join_concurrently(overlay, w, v, rng);
  std::printf("# done: all in system = %s, consistent = %s\n",
              overlay.all_in_system() ? "yes" : "NO",
              check_consistency(view_of(overlay)).consistent() ? "yes" : "NO");
  return 0;
}

int cmd_table(const Args& a) {
  const IdParams params = params_of(a);
  const auto n = a.u64("n", 8), seed = a.u64("seed", 1);
  const auto index = a.u64("node", 0);
  Rng rng(seed);
  auto latency = latency_of(a, static_cast<std::uint32_t>(n), rng);
  EventQueue queue;
  Overlay overlay(params, {}, queue, *latency);
  UniqueIdGenerator gen(params, seed);
  const auto ids = fresh_ids(gen, n);
  initialize_network(overlay, ids, rng);
  if (index >= ids.size()) return usage();
  std::printf("%s", overlay.at(ids[index]).table().to_string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args args;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) return usage();
    args.kv[argv[i] + 2] = argv[i + 1];
  }
  const std::string cmd = argv[1];
  if (cmd == "wave") return cmd_wave(args);
  if (cmd == "bound") return cmd_bound(args);
  if (cmd == "churn") return cmd_churn(args);
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "table") return cmd_table(args);
  return usage();
}
