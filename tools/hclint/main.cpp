// hclint driver: lints the given files/directories (default: src) and exits
// non-zero when any rule fires. See lint.h for the rule list and DESIGN.md
// §10/§15 for the rationale.
//
// --report-waivers prints every "hclint: allow(<rule>)" comment in the
// scanned set with its used/UNUSED status instead of linting; stale
// waivers also fail a normal run via the waiver-unused rule.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool report_waivers = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: hclint [--report-waivers] [path...]   (default path: src)\n"
          "Lints the hcube source tree; exits 1 when any rule fires.\n"
          "Suppress a finding with an \"hclint: allow(<rule>)\" comment on\n"
          "its line; a waiver that suppresses nothing is itself an error.\n"
          "--report-waivers lists every waiver with used/UNUSED status.\n");
      return 0;
    }
    if (arg == "--report-waivers") {
      report_waivers = true;
      continue;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths.push_back("src");

  const hclint::LintResult result = hclint::lint_paths_full(paths);
  if (report_waivers) {
    if (result.waivers.empty()) {
      std::printf("hclint: no waivers\n");
    } else {
      std::fputs(hclint::format_waivers(result.waivers).c_str(), stdout);
    }
    return 0;
  }
  if (result.issues.empty()) {
    std::printf("hclint: clean\n");
    return 0;
  }
  std::fputs(hclint::format_issues(result.issues).c_str(), stdout);
  std::fprintf(stderr, "hclint: %zu issue(s)\n", result.issues.size());
  return 1;
}
