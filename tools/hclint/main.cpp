// hclint driver: lints the given files/directories (default: src) and exits
// non-zero when any rule fires. See lint.h for the rule list and DESIGN.md
// §10 for the rationale.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: hclint [path...]   (default path: src)\n"
                  "Lints the hcube source tree; exits 1 when any rule "
                  "fires.\nSuppress a finding with an \"hclint: "
                  "allow(<rule>)\" comment on its line.\n");
      return 0;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths.push_back("src");

  const std::vector<hclint::Issue> issues = hclint::lint_paths(paths);
  if (issues.empty()) {
    std::printf("hclint: clean\n");
    return 0;
  }
  std::fputs(hclint::format_issues(issues).c_str(), stdout);
  std::fprintf(stderr, "hclint: %zu issue(s)\n", issues.size());
  return 1;
}
