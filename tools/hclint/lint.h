// hclint: repo-specific static analysis for the hcube source tree.
//
// A self-contained scanner (no libclang) that enforces the cross-file
// exhaustiveness and hygiene rules generic linters cannot express:
//
//   type-name-missing        a MessageType enumerator has no type_name() arm
//   codec-decode-missing     a MessageType enumerator is absent from the
//                            decode_message() switch
//   codec-encode-missing     a non-empty MessageBody struct is absent from
//                            the encode_message() body
//   wire-size-missing        a MessageBody alternative is absent from the
//                            wire_size_bytes(const MessageBody&) visit
//   status-to-string-missing a NodeStatus enumerator has no
//                            to_string(NodeStatus) arm
//   msg-count-mismatch       kNumMessageTypes disagrees with the enumerator
//                            count or the MessageBody variant arity
//   no-rand                  std::rand/srand/random_device (determinism:
//                            all randomness flows through util/rng.h)
//   no-wall-clock            time()/clock()/chrono clocks (simulated time
//                            only; wall-clock reads break replayability)
//   no-naked-new             naked new expression (pooling rules: the hot
//                            path is allocation-free; owned memory goes
//                            through containers or make_unique)
//   no-naked-delete          naked delete expression ("= delete" is fine)
//   dcheck-side-effect       HCUBE_DCHECK argument contains ++/--/assignment
//                            (the expression vanishes under NDEBUG)
//   dense-id-no-heap-map     std::unordered_map/set or std::map/set keyed by
//                            NodeId in src/core/ (allocator-order iteration
//                            leaks nondeterminism and wastes memory; use
//                            FlatNodeSet/FlatNodeMap from ids/node_set.h)
//   obs-metric-registered    an HCUBE_METRIC(...) declaration site whose
//                            name is not a ^[a-z0-9_.]+$ string literal, or
//                            whose name collides with another declaration
//                            anywhere in the scanned set (registry names
//                            are canonical and globally unique)
//
// v2 adds multi-pass rules (a function-definition index and the cross-file
// include graph are built first, then rules consume them):
//
//   layering-acyclic-includes  an #include whose target module sits in a
//                            higher layer than the including module, or a
//                            same-layer include cycle. The layer DAG
//                            (DESIGN.md §15): util(0) → ids,topology(1) →
//                            proto(2) → sim,net(3) → core(4) →
//                            obs,analysis,chaos,dht,baseline(5). A file's
//                            module is the path segment after the last
//                            "src/"; files outside src/ are out of scope.
//   scratch-no-escape        a value obtained from a scratch accessor (a
//                            function that returns its own static
//                            thread_local buffer, e.g. NeighborTable::
//                            distinct_neighbors()) is returned onward,
//                            stored into a member (trailing-underscore
//                            LHS / this->), or stored into a local that
//                            later escapes — the span dies at the next
//                            call, so it must be consumed in place.
//                            Returning a file-scope thread_local directly
//                            is always flagged.
//   shared-state-annotated   a file-scope / static-storage mutable object
//                            in src/ with none of: a capability annotation
//                            (HCUBE_GUARDED_BY / HCUBE_PT_GUARDED_BY /
//                            HCUBE_INTERNALLY_SYNCHRONIZED), const /
//                            constexpr / constinit, thread_local, or a
//                            waiver. Keeps the sharding-readiness audit
//                            (util/thread_safety.h) exhaustive: no mutable
//                            static slips in unannotated.
//   digest-nondeterminism    iteration state from a pointer-keyed
//                            map/set/unordered_* used inside a function
//                            that feeds the FNV-1a run digest or the
//                            metrics export (name or body mentions
//                            digest / fnv / to_json): iteration order
//                            depends on addresses and silently breaks
//                            bit-reproducibility.
//   waiver-unused            an "hclint: allow(<rule>)" comment that did
//                            not suppress anything in this run — stale
//                            waivers rot into false documentation and must
//                            be deleted (this rule is not waivable).
//
// Comments and string/char literals are stripped before any rule runs, so
// prose never trips a rule (the include scan reads raw lines, since
// stripping blanks the include path itself). A violation can be suppressed
// by putting "hclint: allow(<rule>)" in a comment on the offending line;
// every waiver must suppress at least one finding or waiver-unused fires.
//
// The scanner keys on this repo's idioms (function signatures, enum names);
// exhaustiveness rules simply stay quiet when their anchors (the enum, the
// function) are not in the scanned set, so fixtures can be single files.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hclint {

struct SourceFile {
  std::string path;
  std::string raw;  // original text (line lookup, suppression comments)
};

struct Issue {
  std::string file;
  std::size_t line;  // 1-based
  std::string rule;
  std::string message;
};

// One "hclint: allow(<rule>)" comment found in the scanned set. `used`
// records whether it suppressed at least one finding in this run.
struct Waiver {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  bool used = false;
};

// Issues plus the full waiver inventory (for `hclint --report-waivers`).
// Unused waivers also appear in `issues` as waiver-unused.
struct LintResult {
  std::vector<Issue> issues;
  std::vector<Waiver> waivers;
};

// Replaces //, /* */ comments and string/char literal contents with spaces,
// preserving line structure. Exposed for tests.
std::string strip_comments_and_strings(const std::string& src);

// Runs every rule over the given files (cross-file rules see all of them).
std::vector<Issue> lint_files(const std::vector<SourceFile>& files);
LintResult lint_files_full(const std::vector<SourceFile>& files);

// Loads every .h/.cpp/.cc under the given paths (files or directories,
// recursively; deterministic path order) and lints them.
std::vector<Issue> lint_paths(const std::vector<std::string>& paths);
LintResult lint_paths_full(const std::vector<std::string>& paths);

// "path:line: [rule] message" per issue.
std::string format_issues(const std::vector<Issue>& issues);

// "path:line: allow(rule) -- used|UNUSED" per waiver.
std::string format_waivers(const std::vector<Waiver>& waivers);

}  // namespace hclint
