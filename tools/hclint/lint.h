// hclint: repo-specific static analysis for the hcube source tree.
//
// A self-contained scanner (no libclang) that enforces the cross-file
// exhaustiveness and hygiene rules generic linters cannot express:
//
//   type-name-missing        a MessageType enumerator has no type_name() arm
//   codec-decode-missing     a MessageType enumerator is absent from the
//                            decode_message() switch
//   codec-encode-missing     a non-empty MessageBody struct is absent from
//                            the encode_message() body
//   wire-size-missing        a MessageBody alternative is absent from the
//                            wire_size_bytes(const MessageBody&) visit
//   status-to-string-missing a NodeStatus enumerator has no
//                            to_string(NodeStatus) arm
//   msg-count-mismatch       kNumMessageTypes disagrees with the enumerator
//                            count or the MessageBody variant arity
//   no-rand                  std::rand/srand/random_device (determinism:
//                            all randomness flows through util/rng.h)
//   no-wall-clock            time()/clock()/chrono clocks (simulated time
//                            only; wall-clock reads break replayability)
//   no-naked-new             naked new expression (pooling rules: the hot
//                            path is allocation-free; owned memory goes
//                            through containers or make_unique)
//   no-naked-delete          naked delete expression ("= delete" is fine)
//   dcheck-side-effect       HCUBE_DCHECK argument contains ++/--/assignment
//                            (the expression vanishes under NDEBUG)
//   dense-id-no-heap-map     std::unordered_map/set or std::map/set keyed by
//                            NodeId in src/core/ (allocator-order iteration
//                            leaks nondeterminism and wastes memory; use
//                            FlatNodeSet/FlatNodeMap from ids/node_set.h)
//   obs-metric-registered    an HCUBE_METRIC(...) declaration site whose
//                            name is not a ^[a-z0-9_.]+$ string literal, or
//                            whose name collides with another declaration
//                            anywhere in the scanned set (registry names
//                            are canonical and globally unique)
//
// Comments and string/char literals are stripped before any rule runs, so
// prose never trips a rule. A violation can be suppressed by putting
// "hclint: allow(<rule>)" in a comment on the offending line.
//
// The scanner keys on this repo's idioms (function signatures, enum names);
// exhaustiveness rules simply stay quiet when their anchors (the enum, the
// function) are not in the scanned set, so fixtures can be single files.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hclint {

struct SourceFile {
  std::string path;
  std::string raw;  // original text (line lookup, suppression comments)
};

struct Issue {
  std::string file;
  std::size_t line;  // 1-based
  std::string rule;
  std::string message;
};

// Replaces //, /* */ comments and string/char literal contents with spaces,
// preserving line structure. Exposed for tests.
std::string strip_comments_and_strings(const std::string& src);

// Runs every rule over the given files (cross-file rules see all of them).
std::vector<Issue> lint_files(const std::vector<SourceFile>& files);

// Loads every .h/.cpp/.cc under the given paths (files or directories,
// recursively; deterministic path order) and lints them.
std::vector<Issue> lint_paths(const std::vector<std::string>& paths);

// "path:line: [rule] message" per issue.
std::string format_issues(const std::vector<Issue>& issues);

}  // namespace hclint
