#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

namespace hclint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return static_cast<std::size_t>(
             std::count(text.begin(), text.begin() + static_cast<long>(pos),
                        '\n')) +
         1;
}

// Whole-word occurrence of `word` in `code` at or after `from`.
std::size_t find_word(const std::string& code, const std::string& word,
                      std::size_t from = 0) {
  while (true) {
    const std::size_t pos = code.find(word, from);
    if (pos == std::string::npos) return std::string::npos;
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
}

std::size_t skip_ws(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos])) != 0)
    ++pos;
  return pos;
}

// Position just past the matching close for the opener at `open_pos`.
// Returns npos when unbalanced.
std::size_t match_balanced(const std::string& code, std::size_t open_pos,
                           char open, char close) {
  std::size_t depth = 0;
  for (std::size_t i = open_pos; i < code.size(); ++i) {
    if (code[i] == open) {
      ++depth;
    } else if (code[i] == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

struct StrippedFile {
  const SourceFile* src = nullptr;
  std::string code;  // comments and literal contents blanked
};

struct BodyRef {
  const SourceFile* src = nullptr;
  std::string body;       // text between the definition's braces
  std::size_t line = 0;   // line of the opening brace
};

// First *definition* (not declaration) whose signature contains `sig`.
std::optional<BodyRef> find_function_body(
    const std::vector<StrippedFile>& files, const std::string& sig) {
  for (const StrippedFile& f : files) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = f.code.find(sig, from);
      if (pos == std::string::npos) break;
      // A declaration hits ';' before '{'; a definition hits '{' first.
      const std::size_t brace = f.code.find('{', pos);
      const std::size_t semi = f.code.find(';', pos);
      if (brace == std::string::npos ||
          (semi != std::string::npos && semi < brace)) {
        from = pos + sig.size();
        continue;
      }
      const std::size_t end = match_balanced(f.code, brace, '{', '}');
      if (end == std::string::npos) break;
      return BodyRef{f.src, f.code.substr(brace + 1, end - brace - 2),
                     line_of(f.code, brace)};
    }
  }
  return std::nullopt;
}

struct EnumRef {
  const SourceFile* src = nullptr;
  std::vector<std::string> enumerators;
  std::size_t line = 0;
};

std::optional<EnumRef> find_enum(const std::vector<StrippedFile>& files,
                                 const std::string& name) {
  const std::string sig = "enum class " + name;
  for (const StrippedFile& f : files) {
    const std::size_t pos = f.code.find(sig);
    if (pos == std::string::npos) continue;
    const std::size_t brace = f.code.find('{', pos);
    if (brace == std::string::npos) continue;
    const std::size_t end = match_balanced(f.code, brace, '{', '}');
    if (end == std::string::npos) continue;
    EnumRef ref{f.src, {}, line_of(f.code, pos)};
    std::string body = f.code.substr(brace + 1, end - brace - 2);
    std::istringstream ss(body);
    std::string item;
    while (std::getline(ss, item, ',')) {
      // Trim and drop any "= value" initializer.
      const std::size_t eq = item.find('=');
      if (eq != std::string::npos) item.resize(eq);
      std::string ident;
      for (char c : item)
        if (is_ident_char(c)) ident.push_back(c);
      if (!ident.empty()) ref.enumerators.push_back(ident);
    }
    if (!ref.enumerators.empty()) return ref;
  }
  return std::nullopt;
}

struct VariantRef {
  const SourceFile* src = nullptr;
  std::vector<std::string> alternatives;
  std::size_t line = 0;
};

std::optional<VariantRef> find_message_body_variant(
    const std::vector<StrippedFile>& files) {
  for (const StrippedFile& f : files) {
    const std::size_t use = f.code.find("using MessageBody");
    if (use == std::string::npos) continue;
    const std::size_t open = f.code.find('<', use);
    const std::size_t semi = f.code.find(';', use);
    if (open == std::string::npos || (semi != std::string::npos && semi < open))
      continue;
    const std::size_t end = match_balanced(f.code, open, '<', '>');
    if (end == std::string::npos) continue;
    VariantRef ref{f.src, {}, line_of(f.code, use)};
    std::string body = f.code.substr(open + 1, end - open - 2);
    std::istringstream ss(body);
    std::string item;
    while (std::getline(ss, item, ',')) {
      std::string ident;
      for (char c : item)
        if (is_ident_char(c)) ident.push_back(c);
      if (!ident.empty()) ref.alternatives.push_back(ident);
    }
    if (!ref.alternatives.empty()) return ref;
  }
  return std::nullopt;
}

// Does `struct name` have an empty body (a pure tag type)? Empty-body
// message structs legitimately never appear in encode_message.
bool struct_has_empty_body(const std::vector<StrippedFile>& files,
                           const std::string& name) {
  const std::string sig = "struct " + name;
  for (const StrippedFile& f : files) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, sig, from);
      if (pos == std::string::npos) break;
      const std::size_t brace = skip_ws(f.code, pos + sig.size());
      if (brace >= f.code.size() || f.code[brace] != '{') {
        from = pos + sig.size();
        continue;  // forward declaration or mention
      }
      const std::size_t end = match_balanced(f.code, brace, '{', '}');
      if (end == std::string::npos) return false;
      const std::string body = f.code.substr(brace + 1, end - brace - 2);
      return std::all_of(body.begin(), body.end(), [](char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
      });
    }
  }
  return false;  // definition not in scanned set: assume it has members
}

// ---- v2 multi-pass infrastructure ----

// A brace-delimited function definition found textually: a ')' whose
// backward-matched '(' is preceded by an identifier (not a control
// keyword), followed — across qualifiers, trailing return types and
// attribute macros — by '{'. Constructor init-lists yield one extra FnDef
// per member initializer sharing the ctor's body; harmless for every
// consumer (rules only ask "which body holds this position" and "does
// this body mention X").
struct FnDef {
  std::string name;
  std::size_t name_pos = 0;  // index of the identifier
  std::size_t open = 0;      // index of '{'
  std::size_t close = 0;     // index just past '}'
};

bool is_control_keyword(const std::string& w) {
  static const char* const kWords[] = {"if",     "for",     "while",
                                       "switch", "catch",   "return",
                                       "sizeof", "alignof", "decltype",
                                       "new",    "noexcept"};
  for (const char* k : kWords)
    if (w == k) return true;
  return false;
}

std::vector<FnDef> collect_function_defs(const std::string& code) {
  std::vector<FnDef> defs;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i] != ')') continue;
    // Backward-match to the opening '(' of this parameter list.
    std::size_t depth = 1;
    std::size_t j = i;
    while (j > 0 && depth > 0) {
      --j;
      if (code[j] == ')')
        ++depth;
      else if (code[j] == '(')
        --depth;
    }
    if (depth != 0) continue;
    // The identifier immediately before '('.
    std::size_t e = j;
    while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1])) != 0)
      --e;
    std::size_t b = e;
    while (b > 0 && is_ident_char(code[b - 1])) --b;
    if (b == e) continue;  // lambda, operator symbol, cast, ...
    const std::string name = code.substr(b, e - b);
    if (is_control_keyword(name)) continue;
    // Forward across qualifiers (const noexcept override), ctor
    // init-lists, trailing return types and attribute macros
    // (parenthesized groups) to '{'. Any other punctuation (';', '=')
    // means declaration / initializer, not a definition.
    std::size_t k = i + 1;
    bool is_def = false;
    while (k < code.size()) {
      const char c = code[k];
      if (c == '{') {
        is_def = true;
        break;
      }
      if (c == '(') {
        const std::size_t m = match_balanced(code, k, '(', ')');
        if (m == std::string::npos) break;
        k = m;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c)) != 0 ||
          is_ident_char(c) || c == ':' || c == '&' || c == '*' || c == '<' ||
          c == '>' || c == ',' || c == '-' || c == '[' || c == ']') {
        ++k;
        continue;
      }
      break;
    }
    if (!is_def) continue;
    const std::size_t end = match_balanced(code, k, '{', '}');
    if (end == std::string::npos) continue;
    defs.push_back({name, b, k, end});
  }
  return defs;
}

// Innermost collected definition whose body holds `pos` (nullptr at file
// or class scope).
const FnDef* enclosing_def(const std::vector<FnDef>& defs, std::size_t pos) {
  const FnDef* best = nullptr;
  for (const FnDef& d : defs)
    if (d.open < pos && pos < d.close && (!best || d.open > best->open))
      best = &d;
  return best;
}

// ---- the layer DAG (layering-acyclic-includes) ----

// Layer ranks (DESIGN.md §15). An include must never point from a lower
// rank to a strictly higher one, and same-rank includes must stay acyclic
// (today: net→sim and obs→analysis, both one-way).
int layer_rank(const std::string& mod) {
  struct Entry {
    const char* mod;
    int rank;
  };
  static constexpr Entry kRanks[] = {
      {"util", 0},     {"ids", 1},   {"topology", 1}, {"proto", 2},
      {"sim", 3},      {"net", 3},   {"core", 4},     {"obs", 5},
      {"analysis", 5}, {"chaos", 5}, {"dht", 5},      {"baseline", 5}};
  for (const Entry& e : kRanks)
    if (mod == e.mod) return e.rank;
  return -1;
}

// Is this path inside a src/ tree? (The last "src/" segment anchors it, so
// fixture trees under tests/fixtures/hclint/src/ are in scope on purpose.)
bool under_src(const std::string& path) {
  const std::size_t src = path.rfind("src/");
  return src != std::string::npos && (src == 0 || path[src - 1] == '/');
}

// The module owning a file: the path segment after the last "src/" (empty
// when the file is not under src/ or sits directly in src/).
std::string module_of_path(const std::string& path) {
  const std::size_t src = path.rfind("src/");
  if (src == std::string::npos) return "";
  if (src != 0 && path[src - 1] != '/') return "";
  const std::size_t begin = src + 4;
  const std::size_t slash = path.find('/', begin);
  if (slash == std::string::npos) return "";
  return path.substr(begin, slash - begin);
}

// ---- small statement-level helpers (scratch-no-escape) ----

// Start of the statement around `pos`: just past the previous ';', '{'
// or '}'.
std::size_t stmt_begin(const std::string& code, std::size_t pos) {
  const std::size_t b = code.find_last_of(";{}", pos);
  return b == std::string::npos ? 0 : b + 1;
}

bool stmt_starts_with_return(const std::string& code, std::size_t begin) {
  const std::size_t t = skip_ws(code, begin);
  return code.compare(t, 6, "return") == 0 &&
         (t + 6 >= code.size() || !is_ident_char(code[t + 6]));
}

// Is the token at `pos` immediately preceded by the keyword `return`?
bool preceded_by_return(const std::string& code, std::size_t pos) {
  std::size_t e = pos;
  while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1])) != 0)
    --e;
  return e >= 6 && code.compare(e - 6, 6, "return") == 0 &&
         (e == 6 || !is_ident_char(code[e - 7]));
}

// Index of a plain (or compound) assignment '=' in [begin, end), skipping
// the comparison operators ==, !=, <=, >=. npos when none.
std::size_t find_assign(const std::string& code, std::size_t begin,
                        std::size_t end) {
  for (std::size_t i = begin; i < end && i < code.size(); ++i) {
    if (code[i] != '=') continue;
    if (i + 1 < code.size() && code[i + 1] == '=') {
      ++i;  // '==' comparison
      continue;
    }
    const char prev = i > begin ? code[i - 1] : '\0';
    if (prev == '=' || prev == '!' || prev == '<' || prev == '>') continue;
    return i;
  }
  return std::string::npos;
}

struct Lhs {
  std::string name;
  bool member = false;  // trailing '_' (repo style) or this->
};

// The assignment target left of the '=' at `eq` (subscripts and compound
// operators stripped).
Lhs lhs_of(const std::string& code, std::size_t eq) {
  std::size_t e = eq;
  auto skip_back_ws = [&] {
    while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1])) != 0)
      --e;
  };
  skip_back_ws();
  while (e > 0 && std::strchr("+-*/%&|^", code[e - 1]) != nullptr) --e;
  skip_back_ws();
  if (e > 0 && code[e - 1] == ']') {
    const std::size_t open = code.rfind('[', e - 1);
    if (open != std::string::npos) e = open;
  }
  skip_back_ws();
  std::size_t b = e;
  while (b > 0 && is_ident_char(code[b - 1])) --b;
  Lhs lhs{code.substr(b, e - b), false};
  const bool this_arrow = b >= 6 && code.compare(b - 6, 6, "this->") == 0;
  lhs.member = this_arrow || (!lhs.name.empty() && lhs.name.back() == '_');
  return lhs;
}

// The declared name in "... thread_local <type> <name> [init];": the last
// identifier before the initializer/terminator, trailing [...] stripped.
std::string declared_name(const std::string& code, std::size_t decl_pos) {
  std::size_t end = code.find_first_of(";=({", decl_pos);
  if (end == std::string::npos) return "";
  std::size_t e = end;
  auto skip_back_ws = [&] {
    while (e > decl_pos &&
           std::isspace(static_cast<unsigned char>(code[e - 1])) != 0)
      --e;
  };
  skip_back_ws();
  if (e > decl_pos && code[e - 1] == ']') {
    const std::size_t open = code.rfind('[', e - 1);
    if (open != std::string::npos && open > decl_pos) e = open;
  }
  skip_back_ws();
  std::size_t b = e;
  while (b > decl_pos && is_ident_char(code[b - 1])) --b;
  return code.substr(b, e - b);
}

// Does [open, close) contain "return <name>"?
bool returns_name(const std::string& code, std::size_t open, std::size_t close,
                  const std::string& name) {
  std::size_t from = open;
  while (true) {
    const std::size_t q = find_word(code, name, from);
    if (q == std::string::npos || q >= close) return false;
    from = q + name.size();
    if (preceded_by_return(code, q)) return true;
  }
}

class Linter {
 public:
  explicit Linter(const std::vector<SourceFile>& files) {
    for (const SourceFile& f : files)
      stripped_.push_back({&f, strip_comments_and_strings(f.raw)});
    for (const StrippedFile& f : stripped_)
      fndefs_.push_back(collect_function_defs(f.code));
  }

  LintResult run() {
    collect_waivers();
    check_message_type_coverage();
    check_node_status_coverage();
    check_metric_registrations();
    check_layering();
    check_scratch_escapes();
    check_digest_nondeterminism();
    for (const StrippedFile& f : stripped_) {
      check_determinism_tokens(f);
      check_dense_id_containers(f);
      check_dcheck_side_effects(f);
      check_shared_state(f);
    }
    // Drop issues suppressed by an "hclint: allow(<rule>)" comment on the
    // offending line — marking the waiver used — then flag stale waivers
    // and order deterministically.
    std::vector<Issue> kept;
    for (Issue& issue : issues_) {
      bool suppressed = false;
      for (Waiver& w : waivers_) {
        if (w.file == issue.file && w.line == issue.line &&
            w.rule == issue.rule) {
          w.used = true;
          suppressed = true;
        }
      }
      if (!suppressed) kept.push_back(std::move(issue));
    }
    for (const Waiver& w : waivers_) {
      if (!w.used) {
        kept.push_back(
            {w.file, w.line, "waiver-unused",
             "waiver allow(" + w.rule +
                 ") suppresses nothing in this run; delete the stale "
                 "comment (waiver-unused is itself not waivable)"});
      }
    }
    std::sort(kept.begin(), kept.end(), [](const Issue& a, const Issue& b) {
      if (a.file != b.file) return a.file < b.file;
      if (a.line != b.line) return a.line < b.line;
      return a.rule < b.rule;
    });
    std::sort(waivers_.begin(), waivers_.end(),
              [](const Waiver& a, const Waiver& b) {
                if (a.file != b.file) return a.file < b.file;
                return a.line < b.line;
              });
    return {std::move(kept), std::move(waivers_)};
  }

 private:
  void report(const SourceFile* src, std::size_t line, std::string rule,
              std::string message) {
    issues_.push_back({src->path, line, std::move(rule), std::move(message)});
  }

  // ---- cross-file exhaustiveness over the protocol spec ----

  void check_message_type_coverage() {
    const auto enum_ref = find_enum(stripped_, "MessageType");
    if (!enum_ref) return;  // nothing protocol-shaped in the scanned set

    // kNumMessageTypes must equal the enumerator count. The definition is
    // the occurrence directly followed by "= <literal>"; plain uses (array
    // bounds, loops) don't qualify.
    [&] {
      for (const StrippedFile& f : stripped_) {
        std::size_t from = 0;
        while (true) {
          const std::size_t pos = find_word(f.code, "kNumMessageTypes", from);
          if (pos == std::string::npos) break;
          from = pos + 16;
          const std::size_t eq = skip_ws(f.code, from);
          if (eq >= f.code.size() || f.code[eq] != '=') continue;
          const std::size_t num = skip_ws(f.code, eq + 1);
          std::size_t declared = 0;
          std::size_t i = num;
          while (i < f.code.size() &&
                 std::isdigit(static_cast<unsigned char>(f.code[i])) != 0)
            declared =
                declared * 10 + static_cast<std::size_t>(f.code[i++] - '0');
          if (i == num) continue;
          if (declared != enum_ref->enumerators.size()) {
            report(f.src, line_of(f.code, pos), "msg-count-mismatch",
                   "kNumMessageTypes = " + std::to_string(declared) +
                       " but enum MessageType has " +
                       std::to_string(enum_ref->enumerators.size()) +
                       " enumerators");
          }
          return;
        }
      }
    }();

    const auto variant = find_message_body_variant(stripped_);
    if (variant &&
        variant->alternatives.size() != enum_ref->enumerators.size()) {
      report(variant->src, variant->line, "msg-count-mismatch",
             "MessageBody has " + std::to_string(variant->alternatives.size()) +
                 " alternatives but MessageType has " +
                 std::to_string(enum_ref->enumerators.size()) +
                 " enumerators");
    }

    const auto type_name = find_function_body(stripped_, "type_name(");
    const auto decode = find_function_body(stripped_, "decode_message(");
    const auto encode = find_function_body(stripped_, "encode_message(");
    const auto wire_size =
        find_function_body(stripped_, "wire_size_bytes(const MessageBody");

    for (const std::string& e : enum_ref->enumerators) {
      const std::string qualified = "MessageType::" + e;
      if (type_name && type_name->body.find(qualified) == std::string::npos) {
        report(type_name->src, type_name->line, "type-name-missing",
               "enumerator " + qualified + " has no type_name() arm");
      }
      if (decode && decode->body.find(qualified) == std::string::npos) {
        report(decode->src, decode->line, "codec-decode-missing",
               "enumerator " + qualified +
                   " is not handled by the decode_message() switch");
      }
    }
    if (variant) {
      for (const std::string& alt : variant->alternatives) {
        if (wire_size &&
            find_word(wire_size->body, alt) == std::string::npos) {
          report(wire_size->src, wire_size->line, "wire-size-missing",
                 "alternative " + alt +
                     " is not covered by wire_size_bytes(const MessageBody&)");
        }
        if (encode && find_word(encode->body, alt) == std::string::npos &&
            !struct_has_empty_body(stripped_, alt)) {
          report(encode->src, encode->line, "codec-encode-missing",
                 "non-empty message struct " + alt +
                     " is not written by encode_message()");
        }
      }
    }
  }

  void check_node_status_coverage() {
    const auto enum_ref = find_enum(stripped_, "NodeStatus");
    if (!enum_ref) return;
    const auto to_string = find_function_body(stripped_, "to_string(NodeStatus");
    if (!to_string) return;
    for (const std::string& e : enum_ref->enumerators) {
      const std::string qualified = "NodeStatus::" + e;
      if (to_string->body.find(qualified) == std::string::npos) {
        report(to_string->src, to_string->line, "status-to-string-missing",
               "enumerator " + qualified + " has no to_string() arm");
      }
    }
  }

  // Every HCUBE_METRIC(ident, "name") declaration site must carry a string
  // literal matching ^[a-z0-9_.]+$, unique across the whole scanned set —
  // registry names are canonical, and a duplicate means two stats fields
  // silently merge into one time series. The literal is read out of the raw
  // source at the stripped offsets (stripping blanks literal contents but
  // preserves the quotes and every offset). The macro's own #define line is
  // exempt.
  void check_metric_registrations() {
    std::map<std::string, std::pair<const SourceFile*, std::size_t>> seen;
    for (const StrippedFile& f : stripped_) {
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = find_word(f.code, "HCUBE_METRIC", from);
        if (pos == std::string::npos) break;
        from = pos + 12;
        // Skip the macro definition itself (#define HCUBE_METRIC...).
        std::size_t line_start = f.code.rfind('\n', pos);
        line_start = line_start == std::string::npos ? 0 : line_start + 1;
        if (f.code.find("#define", line_start) < pos) continue;
        const std::size_t open = skip_ws(f.code, from);
        if (open >= f.code.size() || f.code[open] != '(') continue;
        const std::size_t end = match_balanced(f.code, open, '(', ')');
        if (end == std::string::npos) continue;
        const std::size_t line = line_of(f.code, pos);
        // The name is the first string literal between the parens; the
        // stripped text keeps the quote characters in place.
        const std::size_t q1 = f.code.find('"', open);
        const std::size_t q2 =
            q1 == std::string::npos ? std::string::npos
                                    : f.code.find('"', q1 + 1);
        if (q1 == std::string::npos || q2 == std::string::npos || q2 >= end) {
          report(f.src, line, "obs-metric-registered",
                 "HCUBE_METRIC name must be a string literal");
          continue;
        }
        const std::string name = f.src->raw.substr(q1 + 1, q2 - q1 - 1);
        const bool valid =
            !name.empty() &&
            std::all_of(name.begin(), name.end(), [](char c) {
              return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                     c == '_' || c == '.';
            });
        if (!valid) {
          report(f.src, line, "obs-metric-registered",
                 "metric name \"" + name + "\" must match ^[a-z0-9_.]+$");
          continue;
        }
        const auto [it, inserted] = seen.emplace(
            name, std::make_pair(f.src, line));
        if (!inserted) {
          report(f.src, line, "obs-metric-registered",
                 "metric name \"" + name + "\" already declared at " +
                     it->second.first->path + ":" +
                     std::to_string(it->second.second));
        }
      }
    }
  }

  // ---- v2 multi-pass rules ----

  // Every "hclint: allow(<rule>)" comment in the scanned set, read from
  // the raw text (stripping blanks comments). Malformed rule names (the
  // lint.h prose's "<rule>" placeholder, say) are ignored.
  void collect_waivers() {
    static const std::string kMarker = "hclint: allow(";
    for (const StrippedFile& f : stripped_) {
      const std::string& raw = f.src->raw;
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = raw.find(kMarker, from);
        if (pos == std::string::npos) break;
        from = pos + kMarker.size();
        const std::size_t close = raw.find(')', from);
        if (close == std::string::npos) break;
        const std::string rule = raw.substr(from, close - from);
        const bool well_formed =
            !rule.empty() && std::all_of(rule.begin(), rule.end(), [](char c) {
              return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                     c == '-';
            });
        if (well_formed)
          waivers_.push_back({f.src->path, line_of(raw, pos), rule, false});
      }
    }
  }

  // layering-acyclic-includes: back-edges in the layer DAG are errors;
  // same-rank includes are legal only while that subgraph stays acyclic.
  // Include paths are read from the RAW text — stripping blanks string
  // literal contents, which is exactly where the path lives.
  void check_layering() {
    struct Edge {
      const SourceFile* src;
      std::size_t line;
      std::string from, to;
    };
    std::vector<Edge> same_rank;
    std::map<std::string, std::vector<std::string>> adj;
    for (const StrippedFile& f : stripped_) {
      const std::string mod = module_of_path(f.src->path);
      const int rank = layer_rank(mod);
      if (rank < 0) continue;
      const std::string& raw = f.src->raw;
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = raw.find("#include", from);
        if (pos == std::string::npos) break;
        from = pos + 8;
        const std::size_t q1 = raw.find_first_not_of(" \t", from);
        if (q1 == std::string::npos || raw[q1] != '"') continue;  // <system>
        const std::size_t q2 = raw.find('"', q1 + 1);
        if (q2 == std::string::npos) continue;
        const std::string inc = raw.substr(q1 + 1, q2 - q1 - 1);
        const std::size_t slash = inc.find('/');
        if (slash == std::string::npos) continue;  // sibling header
        const std::string target = inc.substr(0, slash);
        const int target_rank = layer_rank(target);
        if (target_rank < 0 || target == mod) continue;
        const std::size_t line = line_of(raw, pos);
        if (target_rank > rank) {
          report(f.src, line, "layering-acyclic-includes",
                 "include of \"" + inc + "\" is a layering back-edge: " + mod +
                     "/ (layer " + std::to_string(rank) +
                     ") must not depend on " + target + "/ (layer " +
                     std::to_string(target_rank) +
                     "); see the layer DAG in DESIGN.md §15");
        } else if (target_rank == rank) {
          same_rank.push_back({f.src, line, mod, target});
          adj[mod].push_back(target);
        }
      }
    }
    for (const Edge& e : same_rank) {
      // DFS from e.to over same-rank edges: reaching e.from closes a cycle.
      std::vector<std::string> stack{e.to};
      std::set<std::string> seen;
      bool cyclic = false;
      while (!stack.empty()) {
        const std::string cur = stack.back();
        stack.pop_back();
        if (cur == e.from) {
          cyclic = true;
          break;
        }
        if (!seen.insert(cur).second) continue;
        const auto it = adj.find(cur);
        if (it != adj.end())
          for (const std::string& nxt : it->second) stack.push_back(nxt);
      }
      if (cyclic) {
        report(e.src, e.line, "layering-acyclic-includes",
               "same-layer include cycle: " + e.from + "/ -> " + e.to +
                   "/ closes a loop back to " + e.from +
                   "/; break it or move the shared piece down a layer");
      }
    }
  }

  // scratch-no-escape: see lint.h. Pass A finds scratch accessors
  // (functions returning their own static thread_local buffer) across the
  // whole scanned set and flags file-scope thread_local returns directly;
  // pass B checks every accessor call site for return / member-store /
  // escaping-local misuse.
  void check_scratch_escapes() {
    std::set<std::string> accessors;
    for (std::size_t fi = 0; fi < stripped_.size(); ++fi) {
      const std::string& code = stripped_[fi].code;
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = find_word(code, "thread_local", from);
        if (pos == std::string::npos) break;
        from = pos + 12;
        const std::string name = declared_name(code, pos);
        if (name.empty()) continue;
        const FnDef* def = enclosing_def(fndefs_[fi], pos);
        if (def != nullptr) {
          if (returns_name(code, def->open, def->close, name))
            accessors.insert(def->name);
        } else {
          // File-scope scratch: returning it leaks a span that dies at the
          // next use from this thread — route through a documented
          // accessor (and copy at the call site) instead.
          std::size_t rfrom = 0;
          while (true) {
            const std::size_t q = find_word(code, name, rfrom);
            if (q == std::string::npos) break;
            rfrom = q + name.size();
            if (preceded_by_return(code, q)) {
              report(stripped_[fi].src, line_of(code, q), "scratch-no-escape",
                     "file-scope thread_local \"" + name +
                         "\" returned: the storage is reused on the next "
                         "call; copy into owned storage");
            }
          }
        }
      }
    }
    if (accessors.empty()) return;
    for (std::size_t fi = 0; fi < stripped_.size(); ++fi) {
      const StrippedFile& f = stripped_[fi];
      const std::string& code = f.code;
      for (const std::string& acc : accessors) {
        std::size_t from = 0;
        while (true) {
          const std::size_t pos = find_word(code, acc, from);
          if (pos == std::string::npos) break;
          from = pos + acc.size();
          const std::size_t open = skip_ws(code, pos + acc.size());
          if (open >= code.size() || code[open] != '(') continue;
          const std::size_t call_end = match_balanced(code, open, '(', ')');
          if (call_end == std::string::npos) continue;
          const FnDef* host = enclosing_def(fndefs_[fi], pos);
          if (host != nullptr && host->name == acc) continue;  // own body
          const std::size_t begin = stmt_begin(code, pos);
          if (stmt_starts_with_return(code, begin)) {
            report(f.src, line_of(code, pos), "scratch-no-escape",
                   "span from scratch accessor " + acc +
                       "() returned onward: it is invalidated by the "
                       "accessor's next call; copy into owned storage");
            continue;
          }
          const std::size_t eq = find_assign(code, begin, pos);
          if (eq == std::string::npos) continue;  // consumed in place
          const Lhs lhs = lhs_of(code, eq);
          if (host == nullptr) {
            report(f.src, line_of(code, pos), "scratch-no-escape",
                   "span from scratch accessor " + acc +
                       "() stored at static/member-initializer scope; it "
                       "dies at the accessor's next call");
          } else if (lhs.member) {
            report(f.src, line_of(code, pos), "scratch-no-escape",
                   "span from scratch accessor " + acc +
                       "() stored into member \"" + lhs.name +
                       "\": it is invalidated by the accessor's next call");
          } else if (!lhs.name.empty()) {
            track_local_escape(f, fi, code, lhs.name, call_end, *host, acc);
          }
        }
      }
    }
  }

  // A local span copied out of a scratch accessor: flag later statements
  // in the same body that return it or store it into a member.
  void track_local_escape(const StrippedFile& f, std::size_t fi,
                          const std::string& code, const std::string& local,
                          std::size_t after, const FnDef& host,
                          const std::string& acc) {
    (void)fi;
    std::size_t from = after;
    while (true) {
      const std::size_t q = find_word(code, local, from);
      if (q == std::string::npos || q >= host.close) return;
      from = q + local.size();
      if (preceded_by_return(code, q)) {
        report(f.src, line_of(code, q), "scratch-no-escape",
               "local \"" + local + "\" holds a span from scratch accessor " +
                   acc + "() and is returned; copy into owned storage");
        continue;
      }
      const std::size_t qb = stmt_begin(code, q);
      const std::size_t qeq = find_assign(code, qb, q);
      if (qeq == std::string::npos) continue;
      const Lhs target = lhs_of(code, qeq);
      if (target.member) {
        report(f.src, line_of(code, q), "scratch-no-escape",
               "local \"" + local + "\" holds a span from scratch accessor " +
                   acc + "() and is stored into member \"" + target.name +
                   "\"");
      }
    }
  }

  // shared-state-annotated: see lint.h. Function-local statics count —
  // they are shared across callers just the same (the IdTable singleton
  // carries HCUBE_INTERNALLY_SYNCHRONIZED for exactly this reason).
  void check_shared_state(const StrippedFile& f) {
    if (!under_src(f.src->path)) return;
    std::set<std::size_t> reported;
    static const char* const kStorage[] = {"static", "inline"};
    static const char* const kExempt[] = {
        "const",    "constexpr", "constinit", "thread_local",
        "using",    "typedef",   "namespace", "class",
        "struct",   "union",     "enum",      "template",
        "extern",   "operator",  "friend"};
    for (const char* kw : kStorage) {
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = find_word(f.code, kw, from);
        if (pos == std::string::npos) break;
        from = pos + std::strlen(kw);
        const std::size_t decl_end =
            std::min(f.code.find(';', pos), f.code.find('{', pos));
        if (decl_end == std::string::npos) continue;
        // The declaration runs from the statement start (so "constinit
        // static" and "const static" orderings are seen) to the
        // initializer or terminator.
        const std::size_t decl_start = stmt_begin(f.code, pos);
        const std::size_t head_end = std::min(decl_end, f.code.find('=', pos));
        const std::string head = f.code.substr(decl_start, head_end - decl_start);
        bool exempt = false;
        for (const char* ok : kExempt)
          if (find_word(head, ok) != std::string::npos) {
            exempt = true;
            break;
          }
        if (exempt) continue;
        // Annotated shared state is the whole point — accept it before the
        // function test (the annotation macros carry parens).
        const std::string decl = f.code.substr(pos, decl_end - pos);
        if (find_word(decl, "HCUBE_GUARDED_BY") != std::string::npos ||
            find_word(decl, "HCUBE_PT_GUARDED_BY") != std::string::npos ||
            find_word(decl, "HCUBE_INTERNALLY_SYNCHRONIZED") !=
                std::string::npos)
          continue;
        // Functions (a '(' before the initializer / terminator) are fine.
        if (f.code.find('(', pos) < head_end) continue;
        const std::size_t line = line_of(f.code, pos);
        if (!reported.insert(line).second) continue;
        report(f.src, line, "shared-state-annotated",
               "mutable static-storage object: annotate with "
               "HCUBE_GUARDED_BY(...) / HCUBE_INTERNALLY_SYNCHRONIZED "
               "(util/thread_safety.h), make it const/constinit, or waive "
               "with a rationale");
      }
    }
  }

  // digest-nondeterminism: see lint.h. Pass A records every name declared
  // as a pointer-keyed associative container anywhere in the scanned set
  // (members included); pass B flags digest/export functions that declare
  // or mention one.
  void check_digest_nondeterminism() {
    struct PtrDecl {
      std::size_t file;
      std::size_t pos;
      std::size_t line;
      std::string name;  // may be empty (parameter-less / anonymous)
    };
    std::vector<PtrDecl> decls;
    std::set<std::string> tainted;
    static const char* const kContainers[] = {"map",          "set",
                                              "unordered_map", "unordered_set",
                                              "multimap",      "multiset"};
    for (std::size_t fi = 0; fi < stripped_.size(); ++fi) {
      const std::string& code = stripped_[fi].code;
      for (const char* cont : kContainers) {
        std::size_t from = 0;
        while (true) {
          const std::size_t pos = find_word(code, cont, from);
          if (pos == std::string::npos) break;
          from = pos + std::strlen(cont);
          const std::size_t open = skip_ws(code, from);
          if (open >= code.size() || code[open] != '<') continue;
          // First template argument, at angle-depth 1.
          std::size_t depth = 1;
          std::size_t i = open + 1;
          std::size_t arg_end = std::string::npos;
          for (; i < code.size(); ++i) {
            const char c = code[i];
            if (c == '<') {
              ++depth;
            } else if (c == '>') {
              if (--depth == 0) {
                arg_end = i;
                break;
              }
            } else if (c == ',' && depth == 1) {
              arg_end = i;
              break;
            }
          }
          if (arg_end == std::string::npos) continue;
          const std::string key = code.substr(open + 1, arg_end - open - 1);
          if (key.find('*') == std::string::npos) continue;
          // Pointer-keyed: remember the declared name, if one follows.
          std::size_t close = i;
          if (code[i] == ',') {
            std::size_t d2 = 1;
            for (close = i; close < code.size(); ++close) {
              if (code[close] == '<')
                ++d2;
              else if (code[close] == '>' && --d2 == 0)
                break;
            }
            if (close >= code.size()) continue;
          }
          std::size_t p = skip_ws(code, close + 1);
          while (p < code.size() && (code[p] == '&' || code[p] == '*'))
            p = skip_ws(code, p + 1);
          std::size_t q = p;
          while (q < code.size() && is_ident_char(code[q])) ++q;
          PtrDecl d{fi, pos, line_of(code, pos), code.substr(p, q - p)};
          if (!d.name.empty()) tainted.insert(d.name);
          decls.push_back(std::move(d));
        }
      }
    }
    if (decls.empty()) return;
    std::set<std::pair<std::string, std::size_t>> seen;
    auto flag = [&](const SourceFile* src, std::size_t line,
                    const std::string& what) {
      if (!seen.insert({src->path, line}).second) return;
      report(src, line, "digest-nondeterminism",
             what +
                 " in a digest/export function: iteration order depends on "
                 "addresses and breaks FNV-1a run-digest reproducibility; "
                 "key by dense ids or sort before hashing");
    };
    for (std::size_t fi = 0; fi < stripped_.size(); ++fi) {
      const StrippedFile& f = stripped_[fi];
      std::string lower = f.code;
      std::transform(lower.begin(), lower.end(), lower.begin(), [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      });
      for (const FnDef& d : fndefs_[fi]) {
        std::string lname = d.name;
        std::transform(lname.begin(), lname.end(), lname.begin(), [](char c) {
          return static_cast<char>(
              std::tolower(static_cast<unsigned char>(c)));
        });
        const auto body_has = [&](const char* token) {
          const std::size_t at = lower.find(token, d.open);
          return at != std::string::npos && at < d.close;
        };
        const bool feeds = lname.find("digest") != std::string::npos ||
                           lname.find("fnv") != std::string::npos ||
                           lname.find("to_json") != std::string::npos ||
                           body_has("digest") || body_has("fnv") ||
                           body_has("to_json");
        if (!feeds) continue;
        for (const PtrDecl& pd : decls)
          if (pd.file == fi && d.open < pd.pos && pd.pos < d.close)
            flag(f.src, pd.line,
                 "pointer-keyed container declared (\"" + pd.name + "\")");
        for (const std::string& name : tainted) {
          std::size_t from = d.open;
          while (true) {
            const std::size_t q = find_word(f.code, name, from);
            if (q == std::string::npos || q >= d.close) break;
            from = q + name.size();
            flag(f.src, line_of(f.code, q),
                 "pointer-keyed container \"" + name + "\" used");
          }
        }
      }
    }
  }

  // ---- per-file determinism / pooling hygiene ----

  bool called_like_function(const std::string& code, std::size_t pos,
                            std::size_t len) const {
    const std::size_t after = skip_ws(code, pos + len);
    if (after >= code.size() || code[after] != '(') return false;
    // Member calls (x.time(), p->clock()) name our own simulated-time
    // accessors, not the C library.
    std::size_t before = pos;
    while (before > 0 && std::isspace(static_cast<unsigned char>(
                             code[before - 1])) != 0)
      --before;
    if (before > 0 && code[before - 1] == '.') return false;
    if (before > 1 && code[before - 2] == '-' && code[before - 1] == '>')
      return false;
    return true;
  }

  void scan_word(const StrippedFile& f, const std::string& word,
                 bool must_be_call, const std::string& rule,
                 const std::string& message) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, word, from);
      if (pos == std::string::npos) return;
      if (!must_be_call || called_like_function(f.code, pos, word.size()))
        report(f.src, line_of(f.code, pos), rule, message);
      from = pos + word.size();
    }
  }

  void check_determinism_tokens(const StrippedFile& f) {
    scan_word(f, "rand", true, "no-rand",
              "std::rand is non-deterministic; use util/rng.h");
    scan_word(f, "srand", false, "no-rand",
              "srand is non-deterministic; use util/rng.h");
    scan_word(f, "random_device", false, "no-rand",
              "std::random_device is non-deterministic; use util/rng.h");
    scan_word(f, "time", true, "no-wall-clock",
              "wall-clock time() breaks replayability; use simulated time");
    scan_word(f, "clock", true, "no-wall-clock",
              "wall-clock clock() breaks replayability; use simulated time");
    scan_word(f, "gettimeofday", false, "no-wall-clock",
              "gettimeofday breaks replayability; use simulated time");
    scan_word(f, "system_clock", false, "no-wall-clock",
              "std::chrono::system_clock breaks replayability");
    scan_word(f, "steady_clock", false, "no-wall-clock",
              "std::chrono::steady_clock breaks replayability");
    scan_word(f, "high_resolution_clock", false, "no-wall-clock",
              "std::chrono::high_resolution_clock breaks replayability");

    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, "new", from);
      if (pos == std::string::npos) break;
      report(f.src, line_of(f.code, pos), "no-naked-new",
             "naked new: hot paths are pooled; use containers or make_unique");
      from = pos + 3;
    }
    from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, "delete", from);
      if (pos == std::string::npos) break;
      std::size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(f.code[before - 1])) != 0)
        --before;
      if (before == 0 || f.code[before - 1] != '=') {  // "= delete" is fine
        report(f.src, line_of(f.code, pos), "no-naked-delete",
               "naked delete: ownership goes through containers/unique_ptr");
      }
      from = pos + 6;
    }
  }

  // Node-keyed heap hash/tree containers are banned in src/core/: their
  // iteration order is either allocator-dependent (unordered_*, leaking
  // nondeterminism into event ordering) or log-time pointer-chasing
  // (map/set), and the dense-index refactor provides FlatNodeSet /
  // FlatNodeMap with deterministic insertion-order iteration and
  // cache-friendly storage. Fires on `std::unordered_map<NodeId, ...>`,
  // `std::unordered_set<NodeId>`, `std::map<NodeId, ...>`, `std::set<NodeId>`
  // (containers keyed by something else are fine).
  void check_dense_id_containers(const StrippedFile& f) {
    if (f.src->path.find("src/core/") == std::string::npos) return;
    static const char* const kContainers[] = {"unordered_map", "unordered_set",
                                              "map", "set"};
    for (const char* container : kContainers) {
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = find_word(f.code, container, from);
        if (pos == std::string::npos) break;
        from = pos + std::strlen(container);
        const std::size_t open = skip_ws(f.code, from);
        if (open >= f.code.size() || f.code[open] != '<') continue;
        const std::size_t key = skip_ws(f.code, open + 1);
        if (find_word(f.code, "NodeId", key) != key) continue;
        // `NodeIdSet` etc. must not match; find_word already rejects a
        // longer identifier, so reaching here means the key type is NodeId.
        report(f.src, line_of(f.code, pos), "dense-id-no-heap-map",
               std::string("std::") + container +
                   "<NodeId, ...> in src/core/: use FlatNodeSet/FlatNodeMap "
                   "(ids/node_set.h) for deterministic dense-index storage");
      }
    }
  }

  void check_dcheck_side_effects(const StrippedFile& f) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, "HCUBE_DCHECK", from);
      if (pos == std::string::npos) return;
      from = pos + 12;
      const std::size_t open = skip_ws(f.code, from);
      if (open >= f.code.size() || f.code[open] != '(') continue;
      const std::size_t end = match_balanced(f.code, open, '(', ')');
      if (end == std::string::npos) continue;
      const std::string arg = f.code.substr(open + 1, end - open - 2);
      if (has_side_effect(arg)) {
        report(f.src, line_of(f.code, pos), "dcheck-side-effect",
               "HCUBE_DCHECK argument has a side effect; it vanishes under "
               "NDEBUG");
      }
      from = end;
    }
  }

  static bool has_side_effect(const std::string& expr) {
    for (std::size_t i = 0; i < expr.size(); ++i) {
      const char c = expr[i];
      if ((c == '+' || c == '-') && i + 1 < expr.size() && expr[i + 1] == c)
        return true;  // ++ or --
      if (c != '=') continue;
      if (i + 1 < expr.size() && expr[i + 1] == '=') {
        ++i;  // "==" comparison
        continue;
      }
      if (i == 0) continue;
      const char prev = expr[i - 1];
      if (prev == '=' || prev == '!') continue;  // second char of == / !=
      if (prev == '<' || prev == '>') {
        // "<=" / ">=" compare; "<<=" / ">>=" assign.
        if (i >= 2 && expr[i - 2] == prev) return true;
        continue;
      }
      if (prev == '[') continue;  // lambda [=] capture
      return true;  // plain or compound assignment
    }
    return false;
  }

  std::vector<StrippedFile> stripped_;
  std::vector<std::vector<FnDef>> fndefs_;  // parallel to stripped_
  std::vector<Issue> issues_;
  std::vector<Waiver> waivers_;
};

}  // namespace

std::string strip_comments_and_strings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += '"';
        } else if (c == '\'') {
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == (state == State::kString ? '"' : '\'')) {
          state = State::kCode;
          out += c;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

LintResult lint_files_full(const std::vector<SourceFile>& files) {
  return Linter(files).run();
}

std::vector<Issue> lint_files(const std::vector<SourceFile>& files) {
  return lint_files_full(files).issues;
}

namespace {

std::vector<SourceFile> load_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> found;
  auto wants = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cpp" || ext == ".cc";
  };
  for (const std::string& path : paths) {
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path))
        if (entry.is_regular_file() && wants(entry.path()))
          found.push_back(entry.path().string());
    } else {
      found.push_back(path);
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<SourceFile> files;
  for (const std::string& path : found) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream content;
    content << in.rdbuf();
    files.push_back({path, content.str()});
  }
  return files;
}

}  // namespace

LintResult lint_paths_full(const std::vector<std::string>& paths) {
  return lint_files_full(load_paths(paths));
}

std::vector<Issue> lint_paths(const std::vector<std::string>& paths) {
  return lint_paths_full(paths).issues;
}

std::string format_issues(const std::vector<Issue>& issues) {
  std::ostringstream os;
  for (const Issue& issue : issues) {
    os << issue.file << ':' << issue.line << ": [" << issue.rule << "] "
       << issue.message << '\n';
  }
  return os.str();
}

std::string format_waivers(const std::vector<Waiver>& waivers) {
  std::ostringstream os;
  for (const Waiver& w : waivers) {
    os << w.file << ':' << w.line << ": allow(" << w.rule << ") -- "
       << (w.used ? "used" : "UNUSED") << '\n';
  }
  return os.str();
}

}  // namespace hclint
