#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <utility>

namespace hclint {
namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t line_of(const std::string& text, std::size_t pos) {
  return static_cast<std::size_t>(
             std::count(text.begin(), text.begin() + static_cast<long>(pos),
                        '\n')) +
         1;
}

std::string line_text(const std::string& text, std::size_t line) {
  std::size_t start = 0;
  for (std::size_t n = 1; n < line; ++n) {
    start = text.find('\n', start);
    if (start == std::string::npos) return "";
    ++start;
  }
  const std::size_t end = text.find('\n', start);
  return text.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
}

// Whole-word occurrence of `word` in `code` at or after `from`.
std::size_t find_word(const std::string& code, const std::string& word,
                      std::size_t from = 0) {
  while (true) {
    const std::size_t pos = code.find(word, from);
    if (pos == std::string::npos) return std::string::npos;
    const bool left_ok = pos == 0 || !is_ident_char(code[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= code.size() || !is_ident_char(code[after]);
    if (left_ok && right_ok) return pos;
    from = pos + 1;
  }
}

std::size_t skip_ws(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos])) != 0)
    ++pos;
  return pos;
}

// Position just past the matching close for the opener at `open_pos`.
// Returns npos when unbalanced.
std::size_t match_balanced(const std::string& code, std::size_t open_pos,
                           char open, char close) {
  std::size_t depth = 0;
  for (std::size_t i = open_pos; i < code.size(); ++i) {
    if (code[i] == open) {
      ++depth;
    } else if (code[i] == close) {
      if (--depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

struct StrippedFile {
  const SourceFile* src = nullptr;
  std::string code;  // comments and literal contents blanked
};

struct BodyRef {
  const SourceFile* src = nullptr;
  std::string body;       // text between the definition's braces
  std::size_t line = 0;   // line of the opening brace
};

// First *definition* (not declaration) whose signature contains `sig`.
std::optional<BodyRef> find_function_body(
    const std::vector<StrippedFile>& files, const std::string& sig) {
  for (const StrippedFile& f : files) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = f.code.find(sig, from);
      if (pos == std::string::npos) break;
      // A declaration hits ';' before '{'; a definition hits '{' first.
      const std::size_t brace = f.code.find('{', pos);
      const std::size_t semi = f.code.find(';', pos);
      if (brace == std::string::npos ||
          (semi != std::string::npos && semi < brace)) {
        from = pos + sig.size();
        continue;
      }
      const std::size_t end = match_balanced(f.code, brace, '{', '}');
      if (end == std::string::npos) break;
      return BodyRef{f.src, f.code.substr(brace + 1, end - brace - 2),
                     line_of(f.code, brace)};
    }
  }
  return std::nullopt;
}

struct EnumRef {
  const SourceFile* src = nullptr;
  std::vector<std::string> enumerators;
  std::size_t line = 0;
};

std::optional<EnumRef> find_enum(const std::vector<StrippedFile>& files,
                                 const std::string& name) {
  const std::string sig = "enum class " + name;
  for (const StrippedFile& f : files) {
    const std::size_t pos = f.code.find(sig);
    if (pos == std::string::npos) continue;
    const std::size_t brace = f.code.find('{', pos);
    if (brace == std::string::npos) continue;
    const std::size_t end = match_balanced(f.code, brace, '{', '}');
    if (end == std::string::npos) continue;
    EnumRef ref{f.src, {}, line_of(f.code, pos)};
    std::string body = f.code.substr(brace + 1, end - brace - 2);
    std::istringstream ss(body);
    std::string item;
    while (std::getline(ss, item, ',')) {
      // Trim and drop any "= value" initializer.
      const std::size_t eq = item.find('=');
      if (eq != std::string::npos) item.resize(eq);
      std::string ident;
      for (char c : item)
        if (is_ident_char(c)) ident.push_back(c);
      if (!ident.empty()) ref.enumerators.push_back(ident);
    }
    if (!ref.enumerators.empty()) return ref;
  }
  return std::nullopt;
}

struct VariantRef {
  const SourceFile* src = nullptr;
  std::vector<std::string> alternatives;
  std::size_t line = 0;
};

std::optional<VariantRef> find_message_body_variant(
    const std::vector<StrippedFile>& files) {
  for (const StrippedFile& f : files) {
    const std::size_t use = f.code.find("using MessageBody");
    if (use == std::string::npos) continue;
    const std::size_t open = f.code.find('<', use);
    const std::size_t semi = f.code.find(';', use);
    if (open == std::string::npos || (semi != std::string::npos && semi < open))
      continue;
    const std::size_t end = match_balanced(f.code, open, '<', '>');
    if (end == std::string::npos) continue;
    VariantRef ref{f.src, {}, line_of(f.code, use)};
    std::string body = f.code.substr(open + 1, end - open - 2);
    std::istringstream ss(body);
    std::string item;
    while (std::getline(ss, item, ',')) {
      std::string ident;
      for (char c : item)
        if (is_ident_char(c)) ident.push_back(c);
      if (!ident.empty()) ref.alternatives.push_back(ident);
    }
    if (!ref.alternatives.empty()) return ref;
  }
  return std::nullopt;
}

// Does `struct name` have an empty body (a pure tag type)? Empty-body
// message structs legitimately never appear in encode_message.
bool struct_has_empty_body(const std::vector<StrippedFile>& files,
                           const std::string& name) {
  const std::string sig = "struct " + name;
  for (const StrippedFile& f : files) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, sig, from);
      if (pos == std::string::npos) break;
      const std::size_t brace = skip_ws(f.code, pos + sig.size());
      if (brace >= f.code.size() || f.code[brace] != '{') {
        from = pos + sig.size();
        continue;  // forward declaration or mention
      }
      const std::size_t end = match_balanced(f.code, brace, '{', '}');
      if (end == std::string::npos) return false;
      const std::string body = f.code.substr(brace + 1, end - brace - 2);
      return std::all_of(body.begin(), body.end(), [](char c) {
        return std::isspace(static_cast<unsigned char>(c)) != 0;
      });
    }
  }
  return false;  // definition not in scanned set: assume it has members
}

class Linter {
 public:
  explicit Linter(const std::vector<SourceFile>& files) {
    for (const SourceFile& f : files)
      stripped_.push_back({&f, strip_comments_and_strings(f.raw)});
  }

  std::vector<Issue> run() {
    check_message_type_coverage();
    check_node_status_coverage();
    check_metric_registrations();
    for (const StrippedFile& f : stripped_) {
      check_determinism_tokens(f);
      check_dense_id_containers(f);
      check_dcheck_side_effects(f);
    }
    // Drop issues suppressed by an "hclint: allow(<rule>)" comment on the
    // offending line, then order deterministically.
    std::vector<Issue> kept;
    for (Issue& issue : issues_) {
      const std::string marker = "hclint: allow(" + issue.rule + ")";
      bool suppressed = false;
      for (const StrippedFile& f : stripped_) {
        if (f.src->path == issue.file) {
          suppressed =
              line_text(f.src->raw, issue.line).find(marker) !=
              std::string::npos;
          break;
        }
      }
      if (!suppressed) kept.push_back(std::move(issue));
    }
    std::sort(kept.begin(), kept.end(), [](const Issue& a, const Issue& b) {
      if (a.file != b.file) return a.file < b.file;
      if (a.line != b.line) return a.line < b.line;
      return a.rule < b.rule;
    });
    return kept;
  }

 private:
  void report(const SourceFile* src, std::size_t line, std::string rule,
              std::string message) {
    issues_.push_back({src->path, line, std::move(rule), std::move(message)});
  }

  // ---- cross-file exhaustiveness over the protocol spec ----

  void check_message_type_coverage() {
    const auto enum_ref = find_enum(stripped_, "MessageType");
    if (!enum_ref) return;  // nothing protocol-shaped in the scanned set

    // kNumMessageTypes must equal the enumerator count. The definition is
    // the occurrence directly followed by "= <literal>"; plain uses (array
    // bounds, loops) don't qualify.
    [&] {
      for (const StrippedFile& f : stripped_) {
        std::size_t from = 0;
        while (true) {
          const std::size_t pos = find_word(f.code, "kNumMessageTypes", from);
          if (pos == std::string::npos) break;
          from = pos + 16;
          const std::size_t eq = skip_ws(f.code, from);
          if (eq >= f.code.size() || f.code[eq] != '=') continue;
          const std::size_t num = skip_ws(f.code, eq + 1);
          std::size_t declared = 0;
          std::size_t i = num;
          while (i < f.code.size() &&
                 std::isdigit(static_cast<unsigned char>(f.code[i])) != 0)
            declared =
                declared * 10 + static_cast<std::size_t>(f.code[i++] - '0');
          if (i == num) continue;
          if (declared != enum_ref->enumerators.size()) {
            report(f.src, line_of(f.code, pos), "msg-count-mismatch",
                   "kNumMessageTypes = " + std::to_string(declared) +
                       " but enum MessageType has " +
                       std::to_string(enum_ref->enumerators.size()) +
                       " enumerators");
          }
          return;
        }
      }
    }();

    const auto variant = find_message_body_variant(stripped_);
    if (variant &&
        variant->alternatives.size() != enum_ref->enumerators.size()) {
      report(variant->src, variant->line, "msg-count-mismatch",
             "MessageBody has " + std::to_string(variant->alternatives.size()) +
                 " alternatives but MessageType has " +
                 std::to_string(enum_ref->enumerators.size()) +
                 " enumerators");
    }

    const auto type_name = find_function_body(stripped_, "type_name(");
    const auto decode = find_function_body(stripped_, "decode_message(");
    const auto encode = find_function_body(stripped_, "encode_message(");
    const auto wire_size =
        find_function_body(stripped_, "wire_size_bytes(const MessageBody");

    for (const std::string& e : enum_ref->enumerators) {
      const std::string qualified = "MessageType::" + e;
      if (type_name && type_name->body.find(qualified) == std::string::npos) {
        report(type_name->src, type_name->line, "type-name-missing",
               "enumerator " + qualified + " has no type_name() arm");
      }
      if (decode && decode->body.find(qualified) == std::string::npos) {
        report(decode->src, decode->line, "codec-decode-missing",
               "enumerator " + qualified +
                   " is not handled by the decode_message() switch");
      }
    }
    if (variant) {
      for (const std::string& alt : variant->alternatives) {
        if (wire_size &&
            find_word(wire_size->body, alt) == std::string::npos) {
          report(wire_size->src, wire_size->line, "wire-size-missing",
                 "alternative " + alt +
                     " is not covered by wire_size_bytes(const MessageBody&)");
        }
        if (encode && find_word(encode->body, alt) == std::string::npos &&
            !struct_has_empty_body(stripped_, alt)) {
          report(encode->src, encode->line, "codec-encode-missing",
                 "non-empty message struct " + alt +
                     " is not written by encode_message()");
        }
      }
    }
  }

  void check_node_status_coverage() {
    const auto enum_ref = find_enum(stripped_, "NodeStatus");
    if (!enum_ref) return;
    const auto to_string = find_function_body(stripped_, "to_string(NodeStatus");
    if (!to_string) return;
    for (const std::string& e : enum_ref->enumerators) {
      const std::string qualified = "NodeStatus::" + e;
      if (to_string->body.find(qualified) == std::string::npos) {
        report(to_string->src, to_string->line, "status-to-string-missing",
               "enumerator " + qualified + " has no to_string() arm");
      }
    }
  }

  // Every HCUBE_METRIC(ident, "name") declaration site must carry a string
  // literal matching ^[a-z0-9_.]+$, unique across the whole scanned set —
  // registry names are canonical, and a duplicate means two stats fields
  // silently merge into one time series. The literal is read out of the raw
  // source at the stripped offsets (stripping blanks literal contents but
  // preserves the quotes and every offset). The macro's own #define line is
  // exempt.
  void check_metric_registrations() {
    std::map<std::string, std::pair<const SourceFile*, std::size_t>> seen;
    for (const StrippedFile& f : stripped_) {
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = find_word(f.code, "HCUBE_METRIC", from);
        if (pos == std::string::npos) break;
        from = pos + 12;
        // Skip the macro definition itself (#define HCUBE_METRIC...).
        std::size_t line_start = f.code.rfind('\n', pos);
        line_start = line_start == std::string::npos ? 0 : line_start + 1;
        if (f.code.find("#define", line_start) < pos) continue;
        const std::size_t open = skip_ws(f.code, from);
        if (open >= f.code.size() || f.code[open] != '(') continue;
        const std::size_t end = match_balanced(f.code, open, '(', ')');
        if (end == std::string::npos) continue;
        const std::size_t line = line_of(f.code, pos);
        // The name is the first string literal between the parens; the
        // stripped text keeps the quote characters in place.
        const std::size_t q1 = f.code.find('"', open);
        const std::size_t q2 =
            q1 == std::string::npos ? std::string::npos
                                    : f.code.find('"', q1 + 1);
        if (q1 == std::string::npos || q2 == std::string::npos || q2 >= end) {
          report(f.src, line, "obs-metric-registered",
                 "HCUBE_METRIC name must be a string literal");
          continue;
        }
        const std::string name = f.src->raw.substr(q1 + 1, q2 - q1 - 1);
        const bool valid =
            !name.empty() &&
            std::all_of(name.begin(), name.end(), [](char c) {
              return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                     c == '_' || c == '.';
            });
        if (!valid) {
          report(f.src, line, "obs-metric-registered",
                 "metric name \"" + name + "\" must match ^[a-z0-9_.]+$");
          continue;
        }
        const auto [it, inserted] = seen.emplace(
            name, std::make_pair(f.src, line));
        if (!inserted) {
          report(f.src, line, "obs-metric-registered",
                 "metric name \"" + name + "\" already declared at " +
                     it->second.first->path + ":" +
                     std::to_string(it->second.second));
        }
      }
    }
  }

  // ---- per-file determinism / pooling hygiene ----

  bool called_like_function(const std::string& code, std::size_t pos,
                            std::size_t len) const {
    const std::size_t after = skip_ws(code, pos + len);
    if (after >= code.size() || code[after] != '(') return false;
    // Member calls (x.time(), p->clock()) name our own simulated-time
    // accessors, not the C library.
    std::size_t before = pos;
    while (before > 0 && std::isspace(static_cast<unsigned char>(
                             code[before - 1])) != 0)
      --before;
    if (before > 0 && code[before - 1] == '.') return false;
    if (before > 1 && code[before - 2] == '-' && code[before - 1] == '>')
      return false;
    return true;
  }

  void scan_word(const StrippedFile& f, const std::string& word,
                 bool must_be_call, const std::string& rule,
                 const std::string& message) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, word, from);
      if (pos == std::string::npos) return;
      if (!must_be_call || called_like_function(f.code, pos, word.size()))
        report(f.src, line_of(f.code, pos), rule, message);
      from = pos + word.size();
    }
  }

  void check_determinism_tokens(const StrippedFile& f) {
    scan_word(f, "rand", true, "no-rand",
              "std::rand is non-deterministic; use util/rng.h");
    scan_word(f, "srand", false, "no-rand",
              "srand is non-deterministic; use util/rng.h");
    scan_word(f, "random_device", false, "no-rand",
              "std::random_device is non-deterministic; use util/rng.h");
    scan_word(f, "time", true, "no-wall-clock",
              "wall-clock time() breaks replayability; use simulated time");
    scan_word(f, "clock", true, "no-wall-clock",
              "wall-clock clock() breaks replayability; use simulated time");
    scan_word(f, "gettimeofday", false, "no-wall-clock",
              "gettimeofday breaks replayability; use simulated time");
    scan_word(f, "system_clock", false, "no-wall-clock",
              "std::chrono::system_clock breaks replayability");
    scan_word(f, "steady_clock", false, "no-wall-clock",
              "std::chrono::steady_clock breaks replayability");
    scan_word(f, "high_resolution_clock", false, "no-wall-clock",
              "std::chrono::high_resolution_clock breaks replayability");

    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, "new", from);
      if (pos == std::string::npos) break;
      report(f.src, line_of(f.code, pos), "no-naked-new",
             "naked new: hot paths are pooled; use containers or make_unique");
      from = pos + 3;
    }
    from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, "delete", from);
      if (pos == std::string::npos) break;
      std::size_t before = pos;
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(f.code[before - 1])) != 0)
        --before;
      if (before == 0 || f.code[before - 1] != '=') {  // "= delete" is fine
        report(f.src, line_of(f.code, pos), "no-naked-delete",
               "naked delete: ownership goes through containers/unique_ptr");
      }
      from = pos + 6;
    }
  }

  // Node-keyed heap hash/tree containers are banned in src/core/: their
  // iteration order is either allocator-dependent (unordered_*, leaking
  // nondeterminism into event ordering) or log-time pointer-chasing
  // (map/set), and the dense-index refactor provides FlatNodeSet /
  // FlatNodeMap with deterministic insertion-order iteration and
  // cache-friendly storage. Fires on `std::unordered_map<NodeId, ...>`,
  // `std::unordered_set<NodeId>`, `std::map<NodeId, ...>`, `std::set<NodeId>`
  // (containers keyed by something else are fine).
  void check_dense_id_containers(const StrippedFile& f) {
    if (f.src->path.find("src/core/") == std::string::npos) return;
    static const char* const kContainers[] = {"unordered_map", "unordered_set",
                                              "map", "set"};
    for (const char* container : kContainers) {
      std::size_t from = 0;
      while (true) {
        const std::size_t pos = find_word(f.code, container, from);
        if (pos == std::string::npos) break;
        from = pos + std::strlen(container);
        const std::size_t open = skip_ws(f.code, from);
        if (open >= f.code.size() || f.code[open] != '<') continue;
        const std::size_t key = skip_ws(f.code, open + 1);
        if (find_word(f.code, "NodeId", key) != key) continue;
        // `NodeIdSet` etc. must not match; find_word already rejects a
        // longer identifier, so reaching here means the key type is NodeId.
        report(f.src, line_of(f.code, pos), "dense-id-no-heap-map",
               std::string("std::") + container +
                   "<NodeId, ...> in src/core/: use FlatNodeSet/FlatNodeMap "
                   "(ids/node_set.h) for deterministic dense-index storage");
      }
    }
  }

  void check_dcheck_side_effects(const StrippedFile& f) {
    std::size_t from = 0;
    while (true) {
      const std::size_t pos = find_word(f.code, "HCUBE_DCHECK", from);
      if (pos == std::string::npos) return;
      from = pos + 12;
      const std::size_t open = skip_ws(f.code, from);
      if (open >= f.code.size() || f.code[open] != '(') continue;
      const std::size_t end = match_balanced(f.code, open, '(', ')');
      if (end == std::string::npos) continue;
      const std::string arg = f.code.substr(open + 1, end - open - 2);
      if (has_side_effect(arg)) {
        report(f.src, line_of(f.code, pos), "dcheck-side-effect",
               "HCUBE_DCHECK argument has a side effect; it vanishes under "
               "NDEBUG");
      }
      from = end;
    }
  }

  static bool has_side_effect(const std::string& expr) {
    for (std::size_t i = 0; i < expr.size(); ++i) {
      const char c = expr[i];
      if ((c == '+' || c == '-') && i + 1 < expr.size() && expr[i + 1] == c)
        return true;  // ++ or --
      if (c != '=') continue;
      if (i + 1 < expr.size() && expr[i + 1] == '=') {
        ++i;  // "==" comparison
        continue;
      }
      if (i == 0) continue;
      const char prev = expr[i - 1];
      if (prev == '=' || prev == '!') continue;  // second char of == / !=
      if (prev == '<' || prev == '>') {
        // "<=" / ">=" compare; "<<=" / ">>=" assign.
        if (i >= 2 && expr[i - 2] == prev) return true;
        continue;
      }
      if (prev == '[') continue;  // lambda [=] capture
      return true;  // plain or compound assignment
    }
    return false;
  }

  std::vector<StrippedFile> stripped_;
  std::vector<Issue> issues_;
};

}  // namespace

std::string strip_comments_and_strings(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kString;
          out += '"';
        } else if (c == '\'') {
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out += "  ";
          ++i;
        } else if (c == (state == State::kString ? '"' : '\'')) {
          state = State::kCode;
          out += c;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<Issue> lint_files(const std::vector<SourceFile>& files) {
  return Linter(files).run();
}

std::vector<Issue> lint_paths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> found;
  auto wants = [](const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".h" || ext == ".cpp" || ext == ".cc";
  };
  for (const std::string& path : paths) {
    if (fs::is_directory(path)) {
      for (const auto& entry : fs::recursive_directory_iterator(path))
        if (entry.is_regular_file() && wants(entry.path()))
          found.push_back(entry.path().string());
    } else {
      found.push_back(path);
    }
  }
  std::sort(found.begin(), found.end());
  std::vector<SourceFile> files;
  for (const std::string& path : found) {
    std::ifstream in(path, std::ios::binary);
    if (!in) continue;
    std::ostringstream content;
    content << in.rdbuf();
    files.push_back({path, content.str()});
  }
  return lint_files(files);
}

std::string format_issues(const std::vector<Issue>& issues) {
  std::ostringstream os;
  for (const Issue& issue : issues) {
    os << issue.file << ':' << issue.line << ": [" << issue.rule << "] "
       << issue.message << '\n';
  }
  return os.str();
}

}  // namespace hclint
