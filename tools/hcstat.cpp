// hcstat: validate and summarize BENCH_*.json reports (hcube.bench.v1).
//
// Usage: hcstat [--json] <BENCH_a.json> [<BENCH_b.json> ...]
//
// For each file: validates the document against the bench schema (including
// a full parse of the embedded hcube.metrics.v1 registry), then prints the
// bench name, its parameters, and every metric — counters and gauges as
// values, histograms as count/mean/p50/p99/max. With --json, re-emits each
// embedded registry in canonical form instead (schema round-trip mode,
// usable to diff two runs with plain `diff`).
//
// Exit code: 0 if every file validates, 1 otherwise — CI's bench-trend job
// leans on this to reject malformed reports before archiving them.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Bench-specific required-metric checks, beyond the generic schema. The
// "adversary" report (bench_adversary) must carry, for every misbehaving
// fraction it swept, the full per-fraction row — completion rate, p99
// gauge, latency histogram, notification overhead — and must include the
// f = 0 guardrail row. CI's bench-trend job depends on these names.
std::string validate_adversary_metrics(const hcube::obs::MetricsRegistry& reg) {
  std::set<std::string> names;
  reg.for_each([&](const std::string& name, hcube::obs::MetricKind,
                   std::uint64_t, double, const hcube::obs::LogHistogram&) {
    names.insert(name);
  });
  if (!names.count("adv.f0.completion_rate"))
    return "missing adv.f0.completion_rate (the f=0 guardrail row)";
  for (const std::string& name : names) {
    const std::string prefix = "adv.f";
    const std::string suffix = ".completion_rate";
    if (name.rfind(prefix, 0) != 0 || name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string row = name.substr(0, name.size() - suffix.size());
    for (const char* member :
         {".join_latency_ms", ".p99_latency_ms", ".noti_per_join"}) {
      if (!names.count(row + member))
        return "fraction row " + row + " lacks " + member;
    }
  }
  return "";
}

int process(const std::string& path, bool as_json) {
  using namespace hcube::obs;
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "hcstat: cannot read %s\n", path.c_str());
    return 1;
  }
  std::string parse_error;
  const auto doc = json_parse(text, &parse_error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "hcstat: %s: bad JSON: %s\n", path.c_str(),
                 parse_error.c_str());
    return 1;
  }
  const std::string schema_error = validate_bench_json(*doc);
  if (!schema_error.empty()) {
    std::fprintf(stderr, "hcstat: %s: schema violation: %s\n", path.c_str(),
                 schema_error.c_str());
    return 1;
  }

  const JsonValue* metrics = doc->get("metrics");
  const auto reg = MetricsRegistry::from_json(json_render(*metrics));
  if (!reg.has_value()) return 1;  // validate_bench_json already vouched

  if (doc->get("bench")->text == "adversary") {
    const std::string missing = validate_adversary_metrics(*reg);
    if (!missing.empty()) {
      std::fprintf(stderr, "hcstat: %s: adversary schema: %s\n", path.c_str(),
                   missing.c_str());
      return 1;
    }
  }

  if (as_json) {
    std::printf("%s\n", reg->to_json().c_str());
    return 0;
  }

  std::printf("%s: bench %s\n", path.c_str(),
              doc->get("bench")->text.c_str());
  if (const JsonValue* params = doc->get("params")) {
    std::printf("  params:");
    for (const auto& [key, value] : params->members)
      std::printf(" %s=%s", key.c_str(), json_render(value).c_str());
    std::printf("\n");
  }
  reg->for_each([](const std::string& name, MetricKind kind,
                   std::uint64_t count, double gauge,
                   const LogHistogram& hist) {
    switch (kind) {
      case MetricKind::kCounter:
        std::printf("  %-40s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
        break;
      case MetricKind::kGauge:
        std::printf("  %-40s %g\n", name.c_str(), gauge);
        break;
      case MetricKind::kHistogram:
        std::printf(
            "  %-40s n=%llu mean=%.3f p50<=%g p99<=%g max=%g\n",
            name.c_str(), static_cast<unsigned long long>(hist.count()),
            hist.mean(), hist.quantile(0.5), hist.quantile(0.99),
            hist.max());
        break;
    }
  });
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0)
      as_json = true;
    else
      paths.emplace_back(argv[i]);
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: hcstat [--json] <BENCH_*.json> ...\n");
    return 1;
  }
  int rc = 0;
  for (const std::string& path : paths)
    if (process(path, as_json) != 0) rc = 1;
  return rc;
}
