// hcstat: validate and summarize BENCH_*.json reports (hcube.bench.v1).
//
// Usage: hcstat [--json|--summary] <BENCH_a.json> [<BENCH_b.json> ...]
//
// For each file: validates the document against the bench schema (including
// a full parse of the embedded hcube.metrics.v1 registry), then prints the
// bench name, its parameters, and every metric — counters and gauges as
// values, histograms as count/mean/p50/p99/max. With --json, re-emits each
// embedded registry in canonical form instead (schema round-trip mode,
// usable to diff two runs with plain `diff`). With --summary, prints one
// headline row per report (bench-specific key figures; generic reports show
// their metric count) — the at-a-glance trend line for CI logs.
//
// Exit code: 0 if every file validates, 1 otherwise — CI's bench-trend job
// leans on this to reject malformed reports before archiving them.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/bench_report.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

// Bench-specific required-metric checks, beyond the generic schema. The
// "adversary" report (bench_adversary) must carry, for every misbehaving
// fraction it swept, the full per-fraction row — completion rate, p99
// gauge, latency histogram, notification overhead — and must include the
// f = 0 guardrail row. CI's bench-trend job depends on these names.
std::string validate_adversary_metrics(const hcube::obs::MetricsRegistry& reg) {
  std::set<std::string> names;
  reg.for_each([&](const std::string& name, hcube::obs::MetricKind,
                   std::uint64_t, double, const hcube::obs::LogHistogram&) {
    names.insert(name);
  });
  if (!names.count("adv.f0.completion_rate"))
    return "missing adv.f0.completion_rate (the f=0 guardrail row)";
  for (const std::string& name : names) {
    const std::string prefix = "adv.f";
    const std::string suffix = ".completion_rate";
    if (name.rfind(prefix, 0) != 0 || name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    const std::string row = name.substr(0, name.size() - suffix.size());
    for (const char* member :
         {".join_latency_ms", ".p99_latency_ms", ".noti_per_join"}) {
      if (!names.count(row + member))
        return "fraction row " + row + " lacks " + member;
    }
  }
  return "";
}

// The "churn" report (bench_churn's open-loop equilibrium sweep) must carry
// the sweep verdicts CI's bench-trend row reads — the knee, the sustained
// rate and its degradation-on completion, the sustained backlog p99, the
// spike recovery — and at least one per-rate eq.r<rate>.* row, each with
// its full column set.
std::string validate_churn_metrics(const hcube::obs::MetricsRegistry& reg) {
  std::set<std::string> names;
  reg.for_each([&](const std::string& name, hcube::obs::MetricKind,
                   std::uint64_t, double, const hcube::obs::LogHistogram&) {
    names.insert(name);
  });
  for (const char* required :
       {"eq.knee_rate", "eq.sustained_rate", "eq.sustained_completion_rate",
        "eq.backlog_p99", "eq.recovery_ms"}) {
    if (!names.count(required))
      return std::string("missing sweep verdict ") + required;
  }
  bool any_rate_row = false;
  for (const std::string& name : names) {
    const std::string prefix = "eq.r";
    const std::string suffix = ".completion_rate";
    if (name.rfind(prefix, 0) != 0 || name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
      continue;
    any_rate_row = true;
    const std::string row = name.substr(0, name.size() - suffix.size());
    for (const char* member : {".backlog_p99", ".join_p99_ms", ".abandoned"}) {
      if (!names.count(row + member))
        return "rate row " + row + " lacks " + member;
    }
  }
  if (!any_rate_row) return "no eq.r<rate>.completion_rate rows (empty sweep)";
  return "";
}

// The "scale" report (bench_scale on the sharded simulator) must carry the
// sharded-execution fields CI's digest cross-check and trend row read: the
// shard count, the barrier epoch length, total wall time, and peak RSS.
// A scale report missing any of them predates the sharded engine and is
// rejected so stale binaries cannot feed the trend job.
std::string validate_scale_metrics(const hcube::obs::MetricsRegistry& reg) {
  std::set<std::string> names;
  reg.for_each([&](const std::string& name, hcube::obs::MetricKind,
                   std::uint64_t, double, const hcube::obs::LogHistogram&) {
    names.insert(name);
  });
  for (const char* required :
       {"scale.shards", "scale.epoch_ms", "scale.wall_ms", "scale.peak_rss"}) {
    if (!names.count(required))
      return std::string("missing sharded-execution field ") + required;
  }
  if (reg.gauge_value("scale.shards") < 1.0)
    return "scale.shards must be >= 1";
  return "";
}

// One headline line per report for --summary mode. Known benches get their
// key figures; anything else reports its metric count.
void print_summary(const std::string& path, const std::string& bench,
                   const hcube::obs::MetricsRegistry& reg) {
  using hcube::obs::MetricKind;
  if (bench == "churn") {
    const auto g = [&](const char* name) { return reg.gauge_value(name); };
    std::printf(
        "%s: churn knee=%g/s sustained=%g/s completion=%.4f "
        "backlog_p99=%g recovery_ms=%g\n",
        path.c_str(), g("eq.knee_rate"), g("eq.sustained_rate"),
        g("eq.sustained_completion_rate"), g("eq.backlog_p99"),
        g("eq.recovery_ms"));
    return;
  }
  if (bench == "scale") {
    const auto g = [&](const char* name) { return reg.gauge_value(name); };
    std::printf(
        "%s: scale shards=%g bytes/node=%.0f epoch_ms=%g wall_ms=%.0f "
        "peak_rss=%.0fMB\n",
        path.c_str(), g("scale.shards"), g("scale.bytes_per_node"),
        g("scale.epoch_ms"), g("scale.wall_ms"),
        g("scale.peak_rss") / (1024.0 * 1024.0));
    return;
  }
  std::size_t metric_count = 0;
  reg.for_each([&](const std::string&, MetricKind, std::uint64_t, double,
                   const hcube::obs::LogHistogram&) { ++metric_count; });
  std::printf("%s: %s, %zu metrics\n", path.c_str(), bench.c_str(),
              metric_count);
}

int process(const std::string& path, bool as_json, bool as_summary) {
  using namespace hcube::obs;
  std::string text;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "hcstat: cannot read %s\n", path.c_str());
    return 1;
  }
  std::string parse_error;
  const auto doc = json_parse(text, &parse_error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "hcstat: %s: bad JSON: %s\n", path.c_str(),
                 parse_error.c_str());
    return 1;
  }
  const std::string schema_error = validate_bench_json(*doc);
  if (!schema_error.empty()) {
    std::fprintf(stderr, "hcstat: %s: schema violation: %s\n", path.c_str(),
                 schema_error.c_str());
    return 1;
  }

  const JsonValue* metrics = doc->get("metrics");
  const auto reg = MetricsRegistry::from_json(json_render(*metrics));
  if (!reg.has_value()) return 1;  // validate_bench_json already vouched

  const std::string bench = doc->get("bench")->text;
  if (bench == "adversary") {
    const std::string missing = validate_adversary_metrics(*reg);
    if (!missing.empty()) {
      std::fprintf(stderr, "hcstat: %s: adversary schema: %s\n", path.c_str(),
                   missing.c_str());
      return 1;
    }
  }
  if (bench == "churn") {
    const std::string missing = validate_churn_metrics(*reg);
    if (!missing.empty()) {
      std::fprintf(stderr, "hcstat: %s: churn schema: %s\n", path.c_str(),
                   missing.c_str());
      return 1;
    }
  }
  if (bench == "scale") {
    const std::string missing = validate_scale_metrics(*reg);
    if (!missing.empty()) {
      std::fprintf(stderr, "hcstat: %s: scale schema: %s\n", path.c_str(),
                   missing.c_str());
      return 1;
    }
  }

  if (as_json) {
    std::printf("%s\n", reg->to_json().c_str());
    return 0;
  }
  if (as_summary) {
    print_summary(path, bench, *reg);
    return 0;
  }

  std::printf("%s: bench %s\n", path.c_str(),
              doc->get("bench")->text.c_str());
  if (const JsonValue* params = doc->get("params")) {
    std::printf("  params:");
    for (const auto& [key, value] : params->members)
      std::printf(" %s=%s", key.c_str(), json_render(value).c_str());
    std::printf("\n");
  }
  reg->for_each([](const std::string& name, MetricKind kind,
                   std::uint64_t count, double gauge,
                   const LogHistogram& hist) {
    switch (kind) {
      case MetricKind::kCounter:
        std::printf("  %-40s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(count));
        break;
      case MetricKind::kGauge:
        std::printf("  %-40s %g\n", name.c_str(), gauge);
        break;
      case MetricKind::kHistogram:
        std::printf(
            "  %-40s n=%llu mean=%.3f p50<=%g p99<=%g max=%g\n",
            name.c_str(), static_cast<unsigned long long>(hist.count()),
            hist.mean(), hist.quantile(0.5), hist.quantile(0.99),
            hist.max());
        break;
    }
  });
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool as_json = false;
  bool as_summary = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0)
      as_json = true;
    else if (std::strcmp(argv[i], "--summary") == 0)
      as_summary = true;
    else
      paths.emplace_back(argv[i]);
  }
  if (paths.empty() || (as_json && as_summary)) {
    std::fprintf(stderr,
                 "usage: hcstat [--json|--summary] <BENCH_*.json> ...\n");
    return 1;
  }
  int rc = 0;
  for (const std::string& path : paths)
    if (process(path, as_json, as_summary) != 0) rc = 1;
  return rc;
}
