// Wire-codec fuzz harness — one file, two builds:
//
//  * Plain driver (any compiler, built always): writes the seed corpus
//    (one representative encoding per message type, the same shapes the
//    codec-hardening tier-1 test pins) and replays a deterministic
//    bit-flip smoke pass over it. Registered with ctest as
//    fuzz_codec_smoke, so the totality contract — decode_message()
//    returns nullopt on malformed input and never aborts, and every
//    successful decode re-encodes — is exercised in every build.
//
//  * libFuzzer entry point (clang, -DHCUBE_FUZZERS=ON): the same
//    decode -> re-encode probe under coverage-guided mutation with
//    ASan+UBSan. CI's lint job seeds it from --write-corpus and runs a
//    30-second smoke fuzz (-max_total_time=30).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "ids/node_id.h"
#include "proto/codec.h"
#include "util/rng.h"

namespace hcube {
namespace {

// Fixed geometry: the fuzzer explores the byte format, not the parameter
// space (the codec validates digits against whatever params it is given).
const IdParams kFuzzParams{16, 8};

// The probe: decode must be total, and a successful decode must yield a
// structurally valid message that re-encodes without aborting.
void one_input(const std::uint8_t* data, std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  const std::optional<Message> decoded = decode_message(bytes, kFuzzParams);
  if (decoded.has_value()) (void)encode_message(*decoded, kFuzzParams);
}

TableSnapshot sample_snapshot(const IdParams& params, std::uint64_t seed) {
  TableSnapshot snap;
  UniqueIdGenerator gen(params, seed);
  const NodeId owner = gen.next();
  for (std::uint32_t i = 0; i < params.num_digits; ++i)
    snap.add(static_cast<std::uint8_t>(i),
             static_cast<std::uint8_t>(owner.digit(i)), owner,
             NeighborState::kS);
  for (int k = 0; k < 4; ++k) {
    const NodeId other = gen.next();
    const auto lvl = static_cast<std::uint8_t>(owner.csuf_len(other));
    const auto dig = static_cast<std::uint8_t>(other.digit(lvl));
    bool dup = false;
    for (const auto& e : snap.entries)
      if (e.level == lvl && e.digit == dig) dup = true;
    if (!dup) snap.add(lvl, dig, other, NeighborState::kT);
  }
  return snap;
}

// One representative message per type — the same corpus shape the
// codec-hardening test uses, so fuzzing starts from deep, valid inputs
// instead of spending its budget rediscovering the header.
std::vector<Message> seed_corpus(const IdParams& params) {
  UniqueIdGenerator gen(params, 99);
  const NodeId sender = gen.next();
  const NodeId a = gen.next(), b = gen.next();
  const TableSnapshot snap = sample_snapshot(params, 101);

  JoinNotiMsg noti;
  noti.table = snap;
  noti.sender_noti_level = 2;
  BitVec filled(params.num_digits * params.base);
  filled.set(1);
  filled.set(params.num_digits * params.base - 1);
  noti.filled = filled;

  std::vector<Message> all;
  all.push_back({sender, CpRstMsg{}});
  all.push_back({sender, CpRlyMsg{snap}});
  all.push_back({sender, JoinWaitMsg{}});
  all.push_back({sender, JoinWaitRlyMsg{true, a, snap}});
  all.push_back({sender, noti});
  all.push_back({sender, JoinNotiRlyMsg{true, snap, true}});
  all.push_back({sender, InSysNotiMsg{}});
  all.push_back({sender, SpeNotiMsg{a, b}});
  all.push_back({sender, SpeNotiRlyMsg{a, b}});
  all.push_back({sender, RvNghNotiMsg{NeighborState::kT}});
  all.push_back({sender, RvNghNotiRlyMsg{NeighborState::kS}});
  all.push_back({sender, LeaveMsg{snap}});
  all.push_back({sender, LeaveRlyMsg{}});
  all.push_back({sender, NghDropMsg{}});
  all.push_back({sender, PingMsg{}});
  all.push_back({sender, PongMsg{}});
  all.push_back({sender, RepairQueryMsg{2, 5}});
  all.push_back({sender, RepairRlyMsg{2, 5, a}});
  all.push_back({sender, AnnounceMsg{snap}});
  all.push_back({sender, RelAckMsg{12345}});
  return all;
}

}  // namespace
}  // namespace hcube

#if defined(HCUBE_LIBFUZZER)

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  hcube::one_input(data, size);
  return 0;
}

#else  // plain driver: corpus writer + deterministic smoke replay

namespace hcube {
namespace {

int write_corpus(const std::string& dir) {
  std::filesystem::create_directories(dir);
  int written = 0;
  for (const Message& msg : seed_corpus(kFuzzParams)) {
    const auto bytes = encode_message(msg, kFuzzParams);
    const std::string path =
        dir + "/msg_" + type_name(type_of(msg.body)) + ".bin";
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "fuzz_codec: cannot write %s\n", path.c_str());
      return 1;
    }
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ++written;
  }
  std::printf("fuzz_codec: wrote %d seed inputs to %s\n", written,
              dir.c_str());
  return 0;
}

int smoke(int trials_per_type) {
  // Deterministic: a fixed seed makes the ctest run bit-reproducible.
  Rng rng(20260808);
  std::size_t inputs = 0;
  for (const Message& msg : seed_corpus(kFuzzParams)) {
    const auto bytes = encode_message(msg, kFuzzParams);
    // Every strict prefix must be rejected without aborting.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      one_input(bytes.data(), len);
      ++inputs;
    }
    // Seeded bit flips: decode may succeed or fail, never crash.
    for (int t = 0; t < trials_per_type; ++t) {
      auto corrupt = bytes;
      const int flips = 1 + static_cast<int>(rng.next_below(3));
      for (int f = 0; f < flips; ++f) {
        const std::size_t bit = rng.next_below(corrupt.size() * 8);
        corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      }
      one_input(corrupt.data(), corrupt.size());
      ++inputs;
    }
  }
  std::printf("fuzz_codec: smoke ok, %zu inputs survived\n", inputs);
  return 0;
}

}  // namespace
}  // namespace hcube

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--write-corpus") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: fuzz_codec --write-corpus <dir>\n");
      return 2;
    }
    return hcube::write_corpus(argv[2]);
  }
  int trials = 500;
  if (argc >= 3 && std::string(argv[1]) == "--smoke") trials = std::atoi(argv[2]);
  return hcube::smoke(trials);
}

#endif  // HCUBE_LIBFUZZER
