// hchaos — command-line driver for the deterministic chaos engine.
//
// Modes:
//   hchaos --seed S --profile P --steps N      sample a churn script from
//                                              (seed, profile) and run it
//   ... --adversary-frac F                     prepend ceil(F * n_seed)
//                                              misbehave markings to the
//                                              sampled script (0 <= F <= 0.5)
//   ... --adversary-mode M                     their profile: stale |
//                                              dropper | mixed (2:1 default)
//   ... --rate-join R --rate-leave L           open-loop equilibrium run:
//                                              sample rate windows (Poisson
//                                              R joins + L leaves per
//                                              second) instead of point
//                                              churn; --steps is the number
//                                              of steady windows
//   ... --window-ms W                          rate-window length (1000)
//   ... --spike M                              add one spike window at M x
//                                              the steady rates, plus
//                                              recovery windows after it
//   ... --shards K                             execute on K simulator lanes
//                                              under the epoch barrier
//                                              (sim/shard_driver.h). The
//                                              flag clears drop/dup/degrade
//                                              (at K = 1 too) — they are
//                                              single-queue features — so
//                                              compare digests against a
//                                              --shards 1 run of the same
//                                              invocation, not the bare
//                                              profile
//   hchaos --replay FILE                       re-execute a serialized
//                                              schedule (e.g. a CI artifact)
//   ... --shrink                               on failure, ddmin-minimize
//                                              the schedule first
//   ... --out FILE                             where to write the failing
//                                              (minimized, with --shrink)
//                                              schedule artifact
//
// The adversary flags only shape sampling — a replayed artifact already
// carries its misbehave steps, so combining them with --replay is a usage
// error rather than a silent no-op.
//
// Identical invocations produce identical output, including the run digest
// printed in the summary — the engine is a pure function of the schedule.
// Exit status: 0 every oracle passed, 1 an oracle failed, 2 usage or
// parse error.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "chaos/adversary.h"
#include "chaos/engine.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"

namespace {

using namespace hcube;
using namespace hcube::chaos;

int usage() {
  std::string names;
  for (const ChurnProfile& p : profiles())
    names += std::string(names.empty() ? "" : "|") + p.name;
  std::fprintf(stderr,
               "usage: hchaos [--seed <s=1>] [--profile <%s>] [--steps <n=40>]\n"
               "              [--adversary-frac <0..0.5>]\n"
               "              [--adversary-mode stale|dropper|mixed]\n"
               "              [--rate-join <per-s>] [--rate-leave <per-s>]\n"
               "              [--window-ms <ms=1000>] [--spike <mult>]\n"
               "              [--shards <k=1>]\n"
               "              [--replay <file>] [--shrink] [--out <file>]\n",
               names.c_str());
  return 2;
}

// --adversary-frac F: prepend ceil(F * n_seed) kMisbehave steps to a
// sampled script, before any churn, so the fraction is in place when the
// wave hits. pick = i strides the markings across the live set, and the
// profile mask follows --adversary-mode (mixed = the 2:1 stale:dropper
// blend bench_adversary uses).
void inject_adversaries(ChurnScript& script, double frac,
                        const std::string& mode) {
  const auto k = static_cast<std::size_t>(
      std::ceil(frac * static_cast<double>(script.config.n_seed)));
  std::vector<ChurnStep> marked;
  marked.reserve(k + script.steps.size());
  for (std::size_t i = 0; i < k; ++i) {
    std::uint32_t mask = AdversaryEngine::kStaleTable;
    if (mode == "dropper")
      mask = AdversaryEngine::kReplyDropper;
    else if (mode == "mixed")
      mask = (i % 3) < 2 ? AdversaryEngine::kStaleTable
                         : AdversaryEngine::kReplyDropper;
    marked.push_back({.kind = StepKind::kMisbehave,
                      .gap_ms = 1.0,
                      .id_index = mask,
                      .pick = i,
                      .duration_ms = 0.0});
  }
  marked.insert(marked.end(), script.steps.begin(), script.steps.end());
  script.steps = std::move(marked);
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> kv;
  bool shrink = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shrink") {
      shrink = true;
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      kv[arg.substr(2)] = argv[++i];
    } else {
      return usage();
    }
  }
  for (const auto& [key, value] : kv) {
    (void)value;
    if (key != "seed" && key != "profile" && key != "steps" &&
        key != "replay" && key != "out" && key != "adversary-frac" &&
        key != "adversary-mode" && key != "rate-join" &&
        key != "rate-leave" && key != "window-ms" && key != "spike" &&
        key != "shards")
      return usage();
  }
  if (kv.contains("replay") &&
      (kv.contains("adversary-frac") || kv.contains("adversary-mode"))) {
    std::fprintf(stderr,
                 "hchaos: --adversary-* shapes sampling only; a replayed "
                 "artifact already carries its misbehave steps\n");
    return 2;
  }
  const bool rate_flags = kv.contains("rate-join") ||
                          kv.contains("rate-leave") ||
                          kv.contains("window-ms") || kv.contains("spike");
  if (kv.contains("replay") && rate_flags) {
    std::fprintf(stderr,
                 "hchaos: --rate-*/--window-ms/--spike shape sampling only; "
                 "a replayed artifact already carries its rate windows\n");
    return 2;
  }
  if (kv.contains("replay") && kv.contains("shards")) {
    std::fprintf(stderr,
                 "hchaos: a replayed artifact already carries its shard "
                 "count (and sharded artifacts have drop/dup/degrade off)\n");
    return 2;
  }
  if (kv.contains("adversary-mode") && !kv.contains("adversary-frac")) {
    std::fprintf(stderr,
                 "hchaos: --adversary-mode requires --adversary-frac\n");
    return 2;
  }
  const std::string adversary_mode =
      kv.contains("adversary-mode") ? kv["adversary-mode"] : "mixed";
  if (adversary_mode != "stale" && adversary_mode != "dropper" &&
      adversary_mode != "mixed")
    return usage();
  double adversary_frac = 0.0;
  if (kv.contains("adversary-frac")) {
    char* end = nullptr;
    adversary_frac = std::strtod(kv["adversary-frac"].c_str(), &end);
    if (end == kv["adversary-frac"].c_str() || *end != '\0' ||
        !(adversary_frac >= 0.0 && adversary_frac <= 0.5)) {
      std::fprintf(stderr,
                   "hchaos: --adversary-frac must be in [0, 0.5] — a "
                   "misbehaving majority has no honest remainder to "
                   "converge\n");
      return 2;
    }
  }

  std::uint32_t shards = 1;
  if (kv.contains("shards")) {
    shards = static_cast<std::uint32_t>(
        std::strtoull(kv["shards"].c_str(), nullptr, 10));
    if (shards < 1 || shards > 16) {
      std::fprintf(stderr, "hchaos: --shards must be in [1, 16]\n");
      return 2;
    }
  }

  ChurnScript script;
  if (kv.contains("replay")) {
    std::ifstream in(kv["replay"]);
    if (!in) {
      std::fprintf(stderr, "hchaos: cannot open %s\n", kv["replay"].c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    auto parsed = ChurnScript::parse(text.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "hchaos: %s: %s\n", kv["replay"].c_str(),
                   error.c_str());
      return 2;
    }
    script = std::move(*parsed);
    std::printf("replaying %s (%zu steps)\n", kv["replay"].c_str(),
                script.steps.size());
  } else {
    const std::uint64_t seed =
        kv.contains("seed") ? std::strtoull(kv["seed"].c_str(), nullptr, 10)
                            : 1;
    const std::string profile_name =
        kv.contains("profile") ? kv["profile"]
                               : (rate_flags ? "equilibrium" : "mixed");
    const ChurnProfile* profile = find_profile(profile_name);
    if (profile == nullptr) {
      std::fprintf(stderr, "hchaos: unknown profile %s\n",
                   profile_name.c_str());
      return usage();
    }
    const bool equilibrium =
        rate_flags || std::string(profile->name) == "equilibrium";
    if (equilibrium) {
      // Open-loop regime: --steps counts the steady windows, and the rate
      // flags override the spec defaults. The equilibrium profile carries
      // the world config (degrade on, probe/backlog defaults derived).
      EquilibriumSpec spec;
      spec.config = profile->config;
      if (kv.contains("rate-join"))
        spec.rate_join = std::strtod(kv["rate-join"].c_str(), nullptr);
      if (kv.contains("rate-leave"))
        spec.rate_leave = std::strtod(kv["rate-leave"].c_str(), nullptr);
      if (kv.contains("window-ms"))
        spec.window_ms = std::strtod(kv["window-ms"].c_str(), nullptr);
      if (kv.contains("spike"))
        spec.spike_mult = std::strtod(kv["spike"].c_str(), nullptr);
      if (kv.contains("steps"))
        spec.steady_windows = static_cast<std::uint32_t>(
            std::strtoull(kv["steps"].c_str(), nullptr, 10));
      if (spec.rate_join < 0.0 || spec.rate_leave < 0.0 ||
          spec.window_ms <= 0.0 || spec.steady_windows == 0 ||
          (spec.spike_mult != 0.0 && spec.spike_mult < 1.0)) {
        std::fprintf(stderr,
                     "hchaos: rates must be >= 0, --window-ms > 0, --steps "
                     ">= 1, --spike >= 1\n");
        return 2;
      }
      script = sample_equilibrium_script(seed, spec);
      if (adversary_frac > 0.0)
        inject_adversaries(script, adversary_frac, adversary_mode);
      std::printf(
          "seed %llu, equilibrium %.1f/%.1f per s, %zu steps "
          "(%u steady windows of %.0fms%s)\n",
          static_cast<unsigned long long>(seed), spec.rate_join,
          spec.rate_leave, script.steps.size(), spec.steady_windows,
          spec.window_ms, spec.spike_mult > 0.0 ? ", spike" : "");
    } else {
      const auto steps =
          kv.contains("steps")
              ? static_cast<std::uint32_t>(
                    std::strtoull(kv["steps"].c_str(), nullptr, 10))
              : 40u;
      script = sample_script(seed, *profile, steps);
      if (adversary_frac > 0.0)
        inject_adversaries(script, adversary_frac, adversary_mode);
      std::printf("seed %llu, profile %s, %zu steps (incl. barriers)\n",
                  static_cast<unsigned long long>(seed), profile->name,
                  script.steps.size());
    }
  }

  if (kv.contains("shards")) {
    // The sharded runner rejects probabilistic fault streams and mid-epoch
    // backlog reads (both are inherently single-queue; see
    // ChaosConfig::shards). The knobs are cleared whenever --shards is
    // given — at K = 1 too — so CI's determinism cross-check compares a
    // `--shards K` digest against the SAME invocation at `--shards 1`,
    // identical in everything but the lane count.
    script.config.shards = shards;
    script.config.drop = 0.0;
    script.config.duplicate = 0.0;
    script.config.degrade = 0;
    std::printf("shards %u (drop/dup/degrade cleared for sharded mode)\n",
                shards);
  }

  ChaosResult result = run_script(script);
  std::fputs(result.summary().c_str(), stdout);
  if (result.ok) return 0;

  ChurnScript artifact = script;
  if (shrink) {
    ShrinkResult shrunk = shrink_script(script);
    std::printf("shrink: %zu -> %zu steps in %u runs\n", script.steps.size(),
                shrunk.minimal.steps.size(), shrunk.runs);
    std::fputs(shrunk.minimal_result.summary().c_str(), stdout);
    artifact = std::move(shrunk.minimal);
  }
  const std::string out_path =
      kv.contains("out") ? kv["out"] : "hchaos-schedule.txt";
  std::ofstream out(out_path);
  out << artifact.serialize();
  std::printf("failing schedule written to %s (replay with --replay)\n",
              out_path.c_str());
  return 1;
}
