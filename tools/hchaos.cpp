// hchaos — command-line driver for the deterministic chaos engine.
//
// Modes:
//   hchaos --seed S --profile P --steps N      sample a churn script from
//                                              (seed, profile) and run it
//   hchaos --replay FILE                       re-execute a serialized
//                                              schedule (e.g. a CI artifact)
//   ... --shrink                               on failure, ddmin-minimize
//                                              the schedule first
//   ... --out FILE                             where to write the failing
//                                              (minimized, with --shrink)
//                                              schedule artifact
//
// Identical invocations produce identical output, including the run digest
// printed in the summary — the engine is a pure function of the schedule.
// Exit status: 0 every oracle passed, 1 an oracle failed, 2 usage or
// parse error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "chaos/engine.h"
#include "chaos/schedule.h"
#include "chaos/shrink.h"

namespace {

using namespace hcube;
using namespace hcube::chaos;

int usage() {
  std::string names;
  for (const ChurnProfile& p : profiles())
    names += std::string(names.empty() ? "" : "|") + p.name;
  std::fprintf(stderr,
               "usage: hchaos [--seed <s=1>] [--profile <%s>] [--steps <n=40>]\n"
               "              [--replay <file>] [--shrink] [--out <file>]\n",
               names.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> kv;
  bool shrink = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--shrink") {
      shrink = true;
    } else if (arg.rfind("--", 0) == 0 && i + 1 < argc) {
      kv[arg.substr(2)] = argv[++i];
    } else {
      return usage();
    }
  }
  for (const auto& [key, value] : kv) {
    (void)value;
    if (key != "seed" && key != "profile" && key != "steps" &&
        key != "replay" && key != "out")
      return usage();
  }

  ChurnScript script;
  if (kv.contains("replay")) {
    std::ifstream in(kv["replay"]);
    if (!in) {
      std::fprintf(stderr, "hchaos: cannot open %s\n", kv["replay"].c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    auto parsed = ChurnScript::parse(text.str(), &error);
    if (!parsed) {
      std::fprintf(stderr, "hchaos: %s: %s\n", kv["replay"].c_str(),
                   error.c_str());
      return 2;
    }
    script = std::move(*parsed);
    std::printf("replaying %s (%zu steps)\n", kv["replay"].c_str(),
                script.steps.size());
  } else {
    const std::uint64_t seed =
        kv.contains("seed") ? std::strtoull(kv["seed"].c_str(), nullptr, 10)
                            : 1;
    const std::string profile_name =
        kv.contains("profile") ? kv["profile"] : "mixed";
    const ChurnProfile* profile = find_profile(profile_name);
    if (profile == nullptr) {
      std::fprintf(stderr, "hchaos: unknown profile %s\n",
                   profile_name.c_str());
      return usage();
    }
    const auto steps =
        kv.contains("steps")
            ? static_cast<std::uint32_t>(
                  std::strtoull(kv["steps"].c_str(), nullptr, 10))
            : 40u;
    script = sample_script(seed, *profile, steps);
    std::printf("seed %llu, profile %s, %zu steps (incl. barriers)\n",
                static_cast<unsigned long long>(seed), profile->name,
                script.steps.size());
  }

  ChaosResult result = run_script(script);
  std::fputs(result.summary().c_str(), stdout);
  if (result.ok) return 0;

  ChurnScript artifact = script;
  if (shrink) {
    ShrinkResult shrunk = shrink_script(script);
    std::printf("shrink: %zu -> %zu steps in %u runs\n", script.steps.size(),
                shrunk.minimal.steps.size(), shrunk.runs);
    std::fputs(shrunk.minimal_result.summary().c_str(), stdout);
    artifact = std::move(shrunk.minimal);
  }
  const std::string out_path =
      kv.contains("out") ? kv["out"] : "hchaos-schedule.txt";
  std::ofstream out(out_path);
  out << artifact.serialize();
  std::printf("failing schedule written to %s (replay with --replay)\n",
              out_path.c_str());
  return 1;
}
