# Empty dependencies file for hcube_dht.
# This may be replaced when dependencies are built.
