file(REMOVE_RECURSE
  "CMakeFiles/hcube_dht.dir/object_store.cpp.o"
  "CMakeFiles/hcube_dht.dir/object_store.cpp.o.d"
  "libhcube_dht.a"
  "libhcube_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
