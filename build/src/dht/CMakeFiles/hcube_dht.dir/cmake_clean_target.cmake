file(REMOVE_RECURSE
  "libhcube_dht.a"
)
