# Empty compiler generated dependencies file for hcube_core.
# This may be replaced when dependencies are built.
