
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builder.cpp" "src/core/CMakeFiles/hcube_core.dir/builder.cpp.o" "gcc" "src/core/CMakeFiles/hcube_core.dir/builder.cpp.o.d"
  "/root/repo/src/core/consistency.cpp" "src/core/CMakeFiles/hcube_core.dir/consistency.cpp.o" "gcc" "src/core/CMakeFiles/hcube_core.dir/consistency.cpp.o.d"
  "/root/repo/src/core/cset_tree.cpp" "src/core/CMakeFiles/hcube_core.dir/cset_tree.cpp.o" "gcc" "src/core/CMakeFiles/hcube_core.dir/cset_tree.cpp.o.d"
  "/root/repo/src/core/neighbor_table.cpp" "src/core/CMakeFiles/hcube_core.dir/neighbor_table.cpp.o" "gcc" "src/core/CMakeFiles/hcube_core.dir/neighbor_table.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/hcube_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/hcube_core.dir/node.cpp.o.d"
  "/root/repo/src/core/optimize.cpp" "src/core/CMakeFiles/hcube_core.dir/optimize.cpp.o" "gcc" "src/core/CMakeFiles/hcube_core.dir/optimize.cpp.o.d"
  "/root/repo/src/core/overlay.cpp" "src/core/CMakeFiles/hcube_core.dir/overlay.cpp.o" "gcc" "src/core/CMakeFiles/hcube_core.dir/overlay.cpp.o.d"
  "/root/repo/src/core/routing.cpp" "src/core/CMakeFiles/hcube_core.dir/routing.cpp.o" "gcc" "src/core/CMakeFiles/hcube_core.dir/routing.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/hcube_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/hcube_core.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/hcube_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcube_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/hcube_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcube_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hcube_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
