file(REMOVE_RECURSE
  "CMakeFiles/hcube_core.dir/builder.cpp.o"
  "CMakeFiles/hcube_core.dir/builder.cpp.o.d"
  "CMakeFiles/hcube_core.dir/consistency.cpp.o"
  "CMakeFiles/hcube_core.dir/consistency.cpp.o.d"
  "CMakeFiles/hcube_core.dir/cset_tree.cpp.o"
  "CMakeFiles/hcube_core.dir/cset_tree.cpp.o.d"
  "CMakeFiles/hcube_core.dir/neighbor_table.cpp.o"
  "CMakeFiles/hcube_core.dir/neighbor_table.cpp.o.d"
  "CMakeFiles/hcube_core.dir/node.cpp.o"
  "CMakeFiles/hcube_core.dir/node.cpp.o.d"
  "CMakeFiles/hcube_core.dir/optimize.cpp.o"
  "CMakeFiles/hcube_core.dir/optimize.cpp.o.d"
  "CMakeFiles/hcube_core.dir/overlay.cpp.o"
  "CMakeFiles/hcube_core.dir/overlay.cpp.o.d"
  "CMakeFiles/hcube_core.dir/routing.cpp.o"
  "CMakeFiles/hcube_core.dir/routing.cpp.o.d"
  "CMakeFiles/hcube_core.dir/trace.cpp.o"
  "CMakeFiles/hcube_core.dir/trace.cpp.o.d"
  "libhcube_core.a"
  "libhcube_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
