file(REMOVE_RECURSE
  "libhcube_core.a"
)
