# Empty dependencies file for hcube_proto.
# This may be replaced when dependencies are built.
