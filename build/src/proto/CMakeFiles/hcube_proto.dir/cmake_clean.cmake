file(REMOVE_RECURSE
  "CMakeFiles/hcube_proto.dir/codec.cpp.o"
  "CMakeFiles/hcube_proto.dir/codec.cpp.o.d"
  "CMakeFiles/hcube_proto.dir/messages.cpp.o"
  "CMakeFiles/hcube_proto.dir/messages.cpp.o.d"
  "libhcube_proto.a"
  "libhcube_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
