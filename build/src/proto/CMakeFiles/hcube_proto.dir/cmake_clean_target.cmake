file(REMOVE_RECURSE
  "libhcube_proto.a"
)
