# Empty compiler generated dependencies file for hcube_baseline.
# This may be replaced when dependencies are built.
