file(REMOVE_RECURSE
  "CMakeFiles/hcube_baseline.dir/multicast_join.cpp.o"
  "CMakeFiles/hcube_baseline.dir/multicast_join.cpp.o.d"
  "libhcube_baseline.a"
  "libhcube_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
