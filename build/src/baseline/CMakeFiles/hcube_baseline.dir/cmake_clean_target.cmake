file(REMOVE_RECURSE
  "libhcube_baseline.a"
)
