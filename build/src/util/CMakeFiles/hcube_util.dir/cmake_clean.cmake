file(REMOVE_RECURSE
  "CMakeFiles/hcube_util.dir/bitvec.cpp.o"
  "CMakeFiles/hcube_util.dir/bitvec.cpp.o.d"
  "CMakeFiles/hcube_util.dir/logmath.cpp.o"
  "CMakeFiles/hcube_util.dir/logmath.cpp.o.d"
  "CMakeFiles/hcube_util.dir/rng.cpp.o"
  "CMakeFiles/hcube_util.dir/rng.cpp.o.d"
  "CMakeFiles/hcube_util.dir/stats.cpp.o"
  "CMakeFiles/hcube_util.dir/stats.cpp.o.d"
  "libhcube_util.a"
  "libhcube_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
