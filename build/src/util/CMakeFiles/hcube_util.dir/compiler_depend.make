# Empty compiler generated dependencies file for hcube_util.
# This may be replaced when dependencies are built.
