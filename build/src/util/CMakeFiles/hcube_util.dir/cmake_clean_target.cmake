file(REMOVE_RECURSE
  "libhcube_util.a"
)
