file(REMOVE_RECURSE
  "CMakeFiles/hcube_topology.dir/graph.cpp.o"
  "CMakeFiles/hcube_topology.dir/graph.cpp.o.d"
  "CMakeFiles/hcube_topology.dir/latency.cpp.o"
  "CMakeFiles/hcube_topology.dir/latency.cpp.o.d"
  "CMakeFiles/hcube_topology.dir/transit_stub.cpp.o"
  "CMakeFiles/hcube_topology.dir/transit_stub.cpp.o.d"
  "libhcube_topology.a"
  "libhcube_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
