# Empty dependencies file for hcube_topology.
# This may be replaced when dependencies are built.
