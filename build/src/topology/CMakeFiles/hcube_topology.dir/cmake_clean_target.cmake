file(REMOVE_RECURSE
  "libhcube_topology.a"
)
