# Empty compiler generated dependencies file for hcube_analysis.
# This may be replaced when dependencies are built.
