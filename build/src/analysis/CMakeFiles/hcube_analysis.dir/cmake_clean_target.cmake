file(REMOVE_RECURSE
  "libhcube_analysis.a"
)
