file(REMOVE_RECURSE
  "CMakeFiles/hcube_analysis.dir/join_cost.cpp.o"
  "CMakeFiles/hcube_analysis.dir/join_cost.cpp.o.d"
  "libhcube_analysis.a"
  "libhcube_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
