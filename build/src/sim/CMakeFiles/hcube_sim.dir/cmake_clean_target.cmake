file(REMOVE_RECURSE
  "libhcube_sim.a"
)
