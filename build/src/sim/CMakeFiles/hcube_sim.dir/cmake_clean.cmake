file(REMOVE_RECURSE
  "CMakeFiles/hcube_sim.dir/event_queue.cpp.o"
  "CMakeFiles/hcube_sim.dir/event_queue.cpp.o.d"
  "libhcube_sim.a"
  "libhcube_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
