# Empty dependencies file for hcube_sim.
# This may be replaced when dependencies are built.
