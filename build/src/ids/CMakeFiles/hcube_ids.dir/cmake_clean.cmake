file(REMOVE_RECURSE
  "CMakeFiles/hcube_ids.dir/node_id.cpp.o"
  "CMakeFiles/hcube_ids.dir/node_id.cpp.o.d"
  "CMakeFiles/hcube_ids.dir/sha1.cpp.o"
  "CMakeFiles/hcube_ids.dir/sha1.cpp.o.d"
  "CMakeFiles/hcube_ids.dir/suffix_trie.cpp.o"
  "CMakeFiles/hcube_ids.dir/suffix_trie.cpp.o.d"
  "libhcube_ids.a"
  "libhcube_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
