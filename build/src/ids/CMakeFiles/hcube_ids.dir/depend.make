# Empty dependencies file for hcube_ids.
# This may be replaced when dependencies are built.
