
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ids/node_id.cpp" "src/ids/CMakeFiles/hcube_ids.dir/node_id.cpp.o" "gcc" "src/ids/CMakeFiles/hcube_ids.dir/node_id.cpp.o.d"
  "/root/repo/src/ids/sha1.cpp" "src/ids/CMakeFiles/hcube_ids.dir/sha1.cpp.o" "gcc" "src/ids/CMakeFiles/hcube_ids.dir/sha1.cpp.o.d"
  "/root/repo/src/ids/suffix_trie.cpp" "src/ids/CMakeFiles/hcube_ids.dir/suffix_trie.cpp.o" "gcc" "src/ids/CMakeFiles/hcube_ids.dir/suffix_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hcube_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
