file(REMOVE_RECURSE
  "libhcube_ids.a"
)
