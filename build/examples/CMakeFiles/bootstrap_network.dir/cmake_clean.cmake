file(REMOVE_RECURSE
  "CMakeFiles/bootstrap_network.dir/bootstrap_network.cpp.o"
  "CMakeFiles/bootstrap_network.dir/bootstrap_network.cpp.o.d"
  "bootstrap_network"
  "bootstrap_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bootstrap_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
