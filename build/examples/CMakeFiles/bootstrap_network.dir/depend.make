# Empty dependencies file for bootstrap_network.
# This may be replaced when dependencies are built.
