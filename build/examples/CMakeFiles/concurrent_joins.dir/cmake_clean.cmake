file(REMOVE_RECURSE
  "CMakeFiles/concurrent_joins.dir/concurrent_joins.cpp.o"
  "CMakeFiles/concurrent_joins.dir/concurrent_joins.cpp.o.d"
  "concurrent_joins"
  "concurrent_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
