# Empty compiler generated dependencies file for concurrent_joins.
# This may be replaced when dependencies are built.
