# Empty dependencies file for object_location.
# This may be replaced when dependencies are built.
