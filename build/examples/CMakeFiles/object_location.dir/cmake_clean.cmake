file(REMOVE_RECURSE
  "CMakeFiles/object_location.dir/object_location.cpp.o"
  "CMakeFiles/object_location.dir/object_location.cpp.o.d"
  "object_location"
  "object_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
