# Empty compiler generated dependencies file for bench_smallmsg.
# This may be replaced when dependencies are built.
