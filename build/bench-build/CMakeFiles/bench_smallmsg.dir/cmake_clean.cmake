file(REMOVE_RECURSE
  "../bench/bench_smallmsg"
  "../bench/bench_smallmsg.pdb"
  "CMakeFiles/bench_smallmsg.dir/bench_smallmsg.cpp.o"
  "CMakeFiles/bench_smallmsg.dir/bench_smallmsg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_smallmsg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
