file(REMOVE_RECURSE
  "../bench/bench_stretch"
  "../bench/bench_stretch.pdb"
  "CMakeFiles/bench_stretch.dir/bench_stretch.cpp.o"
  "CMakeFiles/bench_stretch.dir/bench_stretch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
