file(REMOVE_RECURSE
  "../bench/bench_fig15b"
  "../bench/bench_fig15b.pdb"
  "CMakeFiles/bench_fig15b.dir/bench_fig15b.cpp.o"
  "CMakeFiles/bench_fig15b.dir/bench_fig15b.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
