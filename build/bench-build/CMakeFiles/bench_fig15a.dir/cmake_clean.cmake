file(REMOVE_RECURSE
  "../bench/bench_fig15a"
  "../bench/bench_fig15a.pdb"
  "CMakeFiles/bench_fig15a.dir/bench_fig15a.cpp.o"
  "CMakeFiles/bench_fig15a.dir/bench_fig15a.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
