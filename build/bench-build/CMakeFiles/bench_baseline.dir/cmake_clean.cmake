file(REMOVE_RECURSE
  "../bench/bench_baseline"
  "../bench/bench_baseline.pdb"
  "CMakeFiles/bench_baseline.dir/bench_baseline.cpp.o"
  "CMakeFiles/bench_baseline.dir/bench_baseline.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
