# Empty dependencies file for bench_init.
# This may be replaced when dependencies are built.
