# Empty dependencies file for bench_survivability.
# This may be replaced when dependencies are built.
