file(REMOVE_RECURSE
  "../bench/bench_survivability"
  "../bench/bench_survivability.pdb"
  "CMakeFiles/bench_survivability.dir/bench_survivability.cpp.o"
  "CMakeFiles/bench_survivability.dir/bench_survivability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_survivability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
