file(REMOVE_RECURSE
  "../bench/bench_theorem4"
  "../bench/bench_theorem4.pdb"
  "CMakeFiles/bench_theorem4.dir/bench_theorem4.cpp.o"
  "CMakeFiles/bench_theorem4.dir/bench_theorem4.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
