file(REMOVE_RECURSE
  "../bench/bench_theorem3"
  "../bench/bench_theorem3.pdb"
  "CMakeFiles/bench_theorem3.dir/bench_theorem3.cpp.o"
  "CMakeFiles/bench_theorem3.dir/bench_theorem3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_theorem3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
