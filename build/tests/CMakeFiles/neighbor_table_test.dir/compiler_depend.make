# Empty compiler generated dependencies file for neighbor_table_test.
# This may be replaced when dependencies are built.
