file(REMOVE_RECURSE
  "CMakeFiles/cset_tree_test.dir/core/cset_tree_test.cpp.o"
  "CMakeFiles/cset_tree_test.dir/core/cset_tree_test.cpp.o.d"
  "cset_tree_test"
  "cset_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cset_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
