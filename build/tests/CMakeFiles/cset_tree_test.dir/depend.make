# Empty dependencies file for cset_tree_test.
# This may be replaced when dependencies are built.
