
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/cset_tree_test.cpp" "tests/CMakeFiles/cset_tree_test.dir/core/cset_tree_test.cpp.o" "gcc" "tests/CMakeFiles/cset_tree_test.dir/core/cset_tree_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hcube_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/hcube_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/hcube_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/hcube_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/hcube_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hcube_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/hcube_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/hcube_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hcube_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
