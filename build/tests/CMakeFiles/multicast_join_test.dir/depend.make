# Empty dependencies file for multicast_join_test.
# This may be replaced when dependencies are built.
