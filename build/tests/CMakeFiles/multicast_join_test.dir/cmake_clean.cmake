file(REMOVE_RECURSE
  "CMakeFiles/multicast_join_test.dir/baseline/multicast_join_test.cpp.o"
  "CMakeFiles/multicast_join_test.dir/baseline/multicast_join_test.cpp.o.d"
  "multicast_join_test"
  "multicast_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicast_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
