# Empty dependencies file for node_id_test.
# This may be replaced when dependencies are built.
