file(REMOVE_RECURSE
  "CMakeFiles/node_id_test.dir/ids/node_id_test.cpp.o"
  "CMakeFiles/node_id_test.dir/ids/node_id_test.cpp.o.d"
  "node_id_test"
  "node_id_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_id_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
