# Empty dependencies file for membership_sweep_test.
# This may be replaced when dependencies are built.
