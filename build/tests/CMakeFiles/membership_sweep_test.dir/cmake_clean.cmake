file(REMOVE_RECURSE
  "CMakeFiles/membership_sweep_test.dir/core/membership_sweep_test.cpp.o"
  "CMakeFiles/membership_sweep_test.dir/core/membership_sweep_test.cpp.o.d"
  "membership_sweep_test"
  "membership_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/membership_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
