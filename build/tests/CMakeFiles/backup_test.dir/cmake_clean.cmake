file(REMOVE_RECURSE
  "CMakeFiles/backup_test.dir/core/backup_test.cpp.o"
  "CMakeFiles/backup_test.dir/core/backup_test.cpp.o.d"
  "backup_test"
  "backup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
