file(REMOVE_RECURSE
  "CMakeFiles/object_store_test.dir/dht/object_store_test.cpp.o"
  "CMakeFiles/object_store_test.dir/dht/object_store_test.cpp.o.d"
  "object_store_test"
  "object_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
