file(REMOVE_RECURSE
  "CMakeFiles/protocol_paths_test.dir/core/protocol_paths_test.cpp.o"
  "CMakeFiles/protocol_paths_test.dir/core/protocol_paths_test.cpp.o.d"
  "protocol_paths_test"
  "protocol_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
