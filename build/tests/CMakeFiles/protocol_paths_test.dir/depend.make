# Empty dependencies file for protocol_paths_test.
# This may be replaced when dependencies are built.
