file(REMOVE_RECURSE
  "CMakeFiles/protocol_invariants_test.dir/core/protocol_invariants_test.cpp.o"
  "CMakeFiles/protocol_invariants_test.dir/core/protocol_invariants_test.cpp.o.d"
  "protocol_invariants_test"
  "protocol_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
