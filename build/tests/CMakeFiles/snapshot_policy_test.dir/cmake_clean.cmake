file(REMOVE_RECURSE
  "CMakeFiles/snapshot_policy_test.dir/core/snapshot_policy_test.cpp.o"
  "CMakeFiles/snapshot_policy_test.dir/core/snapshot_policy_test.cpp.o.d"
  "snapshot_policy_test"
  "snapshot_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
