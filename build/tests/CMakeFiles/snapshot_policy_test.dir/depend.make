# Empty dependencies file for snapshot_policy_test.
# This may be replaced when dependencies are built.
