file(REMOVE_RECURSE
  "CMakeFiles/transit_stub_test.dir/topology/transit_stub_test.cpp.o"
  "CMakeFiles/transit_stub_test.dir/topology/transit_stub_test.cpp.o.d"
  "transit_stub_test"
  "transit_stub_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transit_stub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
