file(REMOVE_RECURSE
  "CMakeFiles/sha1_test.dir/ids/sha1_test.cpp.o"
  "CMakeFiles/sha1_test.dir/ids/sha1_test.cpp.o.d"
  "sha1_test"
  "sha1_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sha1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
