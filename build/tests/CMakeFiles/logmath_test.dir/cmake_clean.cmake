file(REMOVE_RECURSE
  "CMakeFiles/logmath_test.dir/util/logmath_test.cpp.o"
  "CMakeFiles/logmath_test.dir/util/logmath_test.cpp.o.d"
  "logmath_test"
  "logmath_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logmath_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
