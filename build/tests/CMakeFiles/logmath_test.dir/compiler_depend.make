# Empty compiler generated dependencies file for logmath_test.
# This may be replaced when dependencies are built.
