file(REMOVE_RECURSE
  "CMakeFiles/join_cost_test.dir/analysis/join_cost_test.cpp.o"
  "CMakeFiles/join_cost_test.dir/analysis/join_cost_test.cpp.o.d"
  "join_cost_test"
  "join_cost_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
