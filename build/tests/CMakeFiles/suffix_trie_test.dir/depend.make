# Empty dependencies file for suffix_trie_test.
# This may be replaced when dependencies are built.
