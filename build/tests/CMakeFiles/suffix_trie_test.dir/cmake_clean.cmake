file(REMOVE_RECURSE
  "CMakeFiles/suffix_trie_test.dir/ids/suffix_trie_test.cpp.o"
  "CMakeFiles/suffix_trie_test.dir/ids/suffix_trie_test.cpp.o.d"
  "suffix_trie_test"
  "suffix_trie_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suffix_trie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
