# Empty compiler generated dependencies file for leave_test.
# This may be replaced when dependencies are built.
