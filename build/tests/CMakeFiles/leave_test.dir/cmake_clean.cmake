file(REMOVE_RECURSE
  "CMakeFiles/leave_test.dir/core/leave_test.cpp.o"
  "CMakeFiles/leave_test.dir/core/leave_test.cpp.o.d"
  "leave_test"
  "leave_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leave_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
