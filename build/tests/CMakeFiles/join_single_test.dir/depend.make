# Empty dependencies file for join_single_test.
# This may be replaced when dependencies are built.
