file(REMOVE_RECURSE
  "CMakeFiles/join_single_test.dir/core/join_single_test.cpp.o"
  "CMakeFiles/join_single_test.dir/core/join_single_test.cpp.o.d"
  "join_single_test"
  "join_single_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_single_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
