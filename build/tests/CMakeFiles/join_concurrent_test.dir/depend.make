# Empty dependencies file for join_concurrent_test.
# This may be replaced when dependencies are built.
