file(REMOVE_RECURSE
  "CMakeFiles/join_concurrent_test.dir/core/join_concurrent_test.cpp.o"
  "CMakeFiles/join_concurrent_test.dir/core/join_concurrent_test.cpp.o.d"
  "join_concurrent_test"
  "join_concurrent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
