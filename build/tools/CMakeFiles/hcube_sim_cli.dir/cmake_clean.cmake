file(REMOVE_RECURSE
  "CMakeFiles/hcube_sim_cli.dir/hcube_sim.cpp.o"
  "CMakeFiles/hcube_sim_cli.dir/hcube_sim.cpp.o.d"
  "hcube-sim"
  "hcube-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcube_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
