# Empty compiler generated dependencies file for hcube_sim_cli.
# This may be replaced when dependencies are built.
